//! The projection-based sequence checks of Figure 8: `SAMEREAD`,
//! `COMMUTE` and the per-location `CONFLICT` procedure.

use janus_log::{CellKey, Op, OpKind, OpResult};
use janus_obs::CheckReason;
use janus_relational::{Scalar, Value};

use crate::Relaxation;

/// The value of one cell of a shared object: for [`CellKey::Whole`] the
/// whole location value, for a relational key the (possibly absent) tuple
/// stored under it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellValue {
    /// The whole location value.
    Whole(Value),
    /// The tuple under a key, or `None` if absent.
    Entry(Option<janus_relational::Tuple>),
}

/// Projects a location value onto a cell.
pub fn cell_value(value: &Value, cell: &CellKey) -> CellValue {
    match cell {
        CellKey::Whole => CellValue::Whole(value.clone()),
        CellKey::Key(k) => match value {
            Value::Rel(r) => CellValue::Entry(r.lookup(k)),
            // A scalar location has no keys; treat the whole value as the
            // cell (conservative, should not arise from decomposition).
            Value::Scalar(_) => CellValue::Whole(value.clone()),
        },
    }
}

/// Replays a subsequence of operations onto a copy of the entry value and
/// returns the resulting value.
pub fn replay_cell(entry: &Value, ops: &[&Op]) -> Value {
    let mut v = entry.clone();
    for op in ops {
        op.kind.apply(&mut v);
    }
    v
}

/// Whether an operation *observes* the location: its result (or observed
/// absence) can influence the enclosing transaction. This is `ISREAD` of
/// Figure 8, refined at the semantic level: a fetch-add is a blind update
/// whose result our API does not expose, so it does not observe.
pub fn observes(op: &Op) -> bool {
    match &op.kind {
        OpKind::Scalar(janus_log::ScalarOp::Read) => true,
        OpKind::Scalar(_) => false,
        OpKind::Rel(janus_relational::RelOp::Select(_)) => true,
        // A remove with a non-empty read footprint observed absence.
        OpKind::Rel(_) => !op.footprint.read.is_empty(),
    }
}

/// `GETREADSUBSEQUENCES` (Figure 8): the prefixes of `ops` ending at each
/// observing operation.
pub fn read_prefixes<'a, 'b>(ops: &'b [&'a Op]) -> Vec<&'b [&'a Op]> {
    (0..ops.len())
        .filter(|&i| observes(ops[i]))
        .map(|i| &ops[..=i])
        .collect()
}

/// Recomputes the result the final operation of `prefix` observes when
/// the prefix is evaluated from `start`.
fn eval_final_result(start: &Value, prefix: &[&Op]) -> OpResult {
    let mut v = start.clone();
    let mut last = OpResult::None;
    for op in prefix {
        last = op.kind.apply(&mut v);
    }
    last
}

/// `SAMEREAD` (Figure 8): whether the read ending `prefix` observes the
/// same value when the prefix is evaluated directly in `entry` as when
/// the concurrent subsequence `other` is evaluated first.
///
/// This is condition (2) of Lemma 5.2 — "every read of `l` results in the
/// same value regardless of whether the other subsequence is evaluated
/// before it" — which conservatively approximates the flow through local
/// state between shared locations.
pub fn same_read(entry: &Value, prefix: &[&Op], other: &[&Op]) -> bool {
    let direct = eval_final_result(entry, prefix);
    let mut shifted_start = entry.clone();
    for op in other {
        op.kind.apply(&mut shifted_start);
    }
    let shifted = eval_final_result(&shifted_start, prefix);
    direct == shifted
}

/// `COMMUTE` restricted to one cell: whether the cell's value after
/// `a · b` equals its value after `b · a`, both evaluated from `entry`
/// (condition (1) of Lemma 5.2).
pub fn commute(entry: &Value, cell: &CellKey, a: &[&Op], b: &[&Op]) -> bool {
    let ab = {
        let mut v = entry.clone();
        for op in a.iter().chain(b) {
            op.kind.apply(&mut v);
        }
        v
    };
    let ba = {
        let mut v = entry.clone();
        for op in b.iter().chain(a) {
            op.kind.apply(&mut v);
        }
        v
    };
    cell_value(&ab, cell) == cell_value(&ba, cell)
}

/// `CONFLICT` (Figure 8) for one cell: returns `true` iff the two
/// subsequences conflict in entry state `entry`.
///
/// Per §5.3's relaxed-consistency support, a data structure whose
/// [`Relaxation`] tolerates RAW conflicts drops the `SAMEREAD` checks,
/// and one that tolerates WAW conflicts drops the final `COMMUTE` test.
pub fn conflict_cell(
    entry: &Value,
    cell: &CellKey,
    txn: &[&Op],
    committed: &[&Op],
    relax: Relaxation,
) -> bool {
    conflict_cell_attributed(entry, cell, txn, committed, relax).0
}

/// [`conflict_cell`] with abort attribution: additionally names the
/// Figure 8 check that decided the verdict. On conflict the reason is the
/// check that failed first ([`CheckReason::SameRead`] or
/// [`CheckReason::Commute`]); on pass it is [`CheckReason::Commute`], the
/// last check standing between the cell and a conflict.
pub fn conflict_cell_attributed(
    entry: &Value,
    cell: &CellKey,
    txn: &[&Op],
    committed: &[&Op],
    relax: Relaxation,
) -> (bool, CheckReason) {
    if !relax.tolerate_raw {
        for prefix in read_prefixes(txn) {
            if !same_read(entry, prefix, committed) {
                return (true, CheckReason::SameRead);
            }
        }
        for prefix in read_prefixes(committed) {
            if !same_read(entry, prefix, txn) {
                return (true, CheckReason::SameRead);
            }
        }
    }
    if !relax.tolerate_waw && !commute(entry, cell, txn, committed) {
        return (true, CheckReason::Commute);
    }
    (false, CheckReason::Commute)
}

/// Integer helper used in tests and conditions: the net delta of a pure
/// add sequence, or `None` if the sequence contains non-add writes.
pub fn net_delta(ops: &[&Op]) -> Option<i64> {
    let mut delta = 0i64;
    for op in ops {
        match &op.kind {
            OpKind::Scalar(janus_log::ScalarOp::Add(d)) => delta = delta.wrapping_add(*d),
            OpKind::Scalar(janus_log::ScalarOp::Read) => {}
            _ => return None,
        }
    }
    Some(delta)
}

/// Helper for conditions: the value written by the last unconditional
/// whole-cell write in the sequence, if the sequence is write/read-only
/// over scalars.
pub fn last_write(ops: &[&Op]) -> Option<Scalar> {
    let mut last = None;
    for op in ops {
        if let OpKind::Scalar(janus_log::ScalarOp::Write(v)) = &op.kind {
            last = Some(v.clone());
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_log::{ClassId, LocId, ScalarOp};
    use janus_relational::{tuple, Fd, Formula, RelOp, Relation, Schema};

    fn mk_ops(kinds: Vec<OpKind>, start: &Value) -> Vec<Op> {
        let mut v = start.clone();
        kinds
            .into_iter()
            .map(|k| Op::execute(LocId(0), ClassId::new("t"), k, &mut v).0)
            .collect()
    }

    fn refs(ops: &[Op]) -> Vec<&Op> {
        ops.iter().collect()
    }

    fn add(d: i64) -> OpKind {
        OpKind::Scalar(ScalarOp::Add(d))
    }

    fn read() -> OpKind {
        OpKind::Scalar(ScalarOp::Read)
    }

    fn write(v: i64) -> OpKind {
        OpKind::Scalar(ScalarOp::Write(Scalar::Int(v)))
    }

    #[test]
    fn identity_sequences_commute() {
        // The Figure 1 pattern: { work+=2; work-=2 } vs { work+=3; work-=3 }.
        let entry = Value::int(0);
        let a = mk_ops(vec![add(2), add(-2)], &entry);
        let b = mk_ops(vec![add(3), add(-3)], &entry);
        assert!(!conflict_cell(
            &entry,
            &CellKey::Whole,
            &refs(&a),
            &refs(&b),
            Relaxation::default()
        ));
    }

    #[test]
    fn pure_adds_always_commute() {
        let entry = Value::int(5);
        let a = mk_ops(vec![add(7)], &entry);
        let b = mk_ops(vec![add(-2), add(4)], &entry);
        assert!(!conflict_cell(
            &entry,
            &CellKey::Whole,
            &refs(&a),
            &refs(&b),
            Relaxation::default()
        ));
    }

    #[test]
    fn read_vs_nonzero_delta_conflicts() {
        let entry = Value::int(0);
        let a = mk_ops(vec![read()], &entry);
        let b = mk_ops(vec![add(1)], &entry);
        assert!(conflict_cell(
            &entry,
            &CellKey::Whole,
            &refs(&a),
            &refs(&b),
            Relaxation::default()
        ));
    }

    #[test]
    fn read_vs_identity_delta_does_not_conflict() {
        let entry = Value::int(0);
        let a = mk_ops(vec![read()], &entry);
        let b = mk_ops(vec![add(1), add(-1)], &entry);
        assert!(!conflict_cell(
            &entry,
            &CellKey::Whole,
            &refs(&a),
            &refs(&b),
            Relaxation::default()
        ));
    }

    #[test]
    fn equal_writes_commute_different_writes_do_not() {
        let entry = Value::int(0);
        let a = mk_ops(vec![write(7)], &entry);
        let b = mk_ops(vec![write(7)], &entry);
        assert!(!conflict_cell(
            &entry,
            &CellKey::Whole,
            &refs(&a),
            &refs(&b),
            Relaxation::default()
        ));
        let c = mk_ops(vec![write(8)], &entry);
        assert!(conflict_cell(
            &entry,
            &CellKey::Whole,
            &refs(&a),
            &refs(&c),
            Relaxation::default()
        ));
    }

    #[test]
    fn shared_as_local_write_then_read_needs_waw_relaxation() {
        // Both transactions write the scratch location then read it
        // (PMD's ctx fields, Figure 4). Reads are covered by own writes
        // so SAMEREAD passes, but final values differ: only the WAW
        // relaxation admits this pattern.
        let entry = Value::int(0);
        let a = mk_ops(vec![write(1), read()], &entry);
        let b = mk_ops(vec![write(2), read()], &entry);
        assert!(conflict_cell(
            &entry,
            &CellKey::Whole,
            &refs(&a),
            &refs(&b),
            Relaxation::default()
        ));
        assert!(!conflict_cell(
            &entry,
            &CellKey::Whole,
            &refs(&a),
            &refs(&b),
            Relaxation {
                tolerate_raw: false,
                tolerate_waw: true
            }
        ));
    }

    #[test]
    fn paper_counterexample_commute_alone_is_unsound() {
        // §5.3: T1 = { b = x==0; if (b) y = 1; x = 1 }, T2 = { x = 1 }.
        // The x-subsequences commute and the y-subsequences commute, yet
        // the transactions do not: SAMEREAD must flag T1's read of x.
        let entry = Value::int(0);
        let t1_x = mk_ops(vec![read(), write(1)], &entry);
        let t2_x = mk_ops(vec![write(1)], &entry);
        // COMMUTE alone passes...
        assert!(commute(&entry, &CellKey::Whole, &refs(&t1_x), &refs(&t2_x)));
        // ...but the full check (with SAMEREAD) reports the conflict.
        assert!(conflict_cell(
            &entry,
            &CellKey::Whole,
            &refs(&t1_x),
            &refs(&t2_x),
            Relaxation::default()
        ));
    }

    #[test]
    fn spurious_read_suppressed_by_raw_relaxation() {
        // JGraphT-1's maxColor: one transaction only reads, the other
        // writes a new value. RAW tolerance suppresses the conflict.
        let entry = Value::int(3);
        let reader = mk_ops(vec![read()], &entry);
        let writer = mk_ops(vec![write(9)], &entry);
        assert!(conflict_cell(
            &entry,
            &CellKey::Whole,
            &refs(&reader),
            &refs(&writer),
            Relaxation::default()
        ));
        assert!(!conflict_cell(
            &entry,
            &CellKey::Whole,
            &refs(&reader),
            &refs(&writer),
            Relaxation {
                tolerate_raw: true,
                tolerate_waw: true,
            }
        ));
    }

    #[test]
    fn relational_insert_remove_identity() {
        let schema = Schema::with_fd(&["k", "v"], Fd::new(&[0], &[1]));
        let entry = Value::Rel(Relation::empty(schema));
        let a = mk_ops(
            vec![
                OpKind::Rel(RelOp::insert(tuple![1, 10])),
                OpKind::Rel(RelOp::remove(tuple![1, 10])),
            ],
            &entry,
        );
        let b = mk_ops(
            vec![
                OpKind::Rel(RelOp::insert(tuple![1, 20])),
                OpKind::Rel(RelOp::remove(tuple![1, 20])),
            ],
            &entry,
        );
        let (ra, rb) = (refs(&a), refs(&b));
        assert!(!conflict_cell(
            &entry,
            &CellKey::Key(janus_relational::Key::scalar(1i64)),
            &ra,
            &rb,
            Relaxation::default()
        ));
    }

    #[test]
    fn select_vs_insert_conflicts() {
        let schema = Schema::with_fd(&["k", "v"], Fd::new(&[0], &[1]));
        let entry = Value::Rel(Relation::empty(schema));
        let a = mk_ops(
            vec![OpKind::Rel(RelOp::select(Formula::eq(0, 1i64)))],
            &entry,
        );
        let b = mk_ops(vec![OpKind::Rel(RelOp::insert(tuple![1, 10]))], &entry);
        assert!(conflict_cell(
            &entry,
            &CellKey::Key(janus_relational::Key::scalar(1i64)),
            &refs(&a),
            &refs(&b),
            Relaxation::default()
        ));
    }

    #[test]
    fn read_prefixes_end_at_observers() {
        let entry = Value::int(0);
        let ops = mk_ops(vec![add(1), read(), add(2), read()], &entry);
        let r = refs(&ops);
        let prefixes = read_prefixes(&r);
        assert_eq!(prefixes.len(), 2);
        assert_eq!(prefixes[0].len(), 2);
        assert_eq!(prefixes[1].len(), 4);
    }

    #[test]
    fn net_delta_and_last_write_helpers() {
        let entry = Value::int(0);
        let a = mk_ops(vec![add(2), add(-5)], &entry);
        assert_eq!(net_delta(&refs(&a)), Some(-3));
        let b = mk_ops(vec![add(1), write(9)], &entry);
        assert_eq!(net_delta(&refs(&b)), None);
        assert_eq!(last_write(&refs(&b)), Some(Scalar::Int(9)));
        assert_eq!(last_write(&refs(&a)), None);
    }

    #[test]
    fn cell_value_projection() {
        let schema = Schema::with_fd(&["k", "v"], Fd::new(&[0], &[1]));
        let rel = Relation::from_tuples(schema, [tuple![1, 10]]);
        let v = Value::Rel(rel);
        let k1 = CellKey::Key(janus_relational::Key::scalar(1i64));
        let k2 = CellKey::Key(janus_relational::Key::scalar(2i64));
        assert_eq!(cell_value(&v, &k1), CellValue::Entry(Some(tuple![1, 10])));
        assert_eq!(cell_value(&v, &k2), CellValue::Entry(None));
        assert!(matches!(
            cell_value(&v, &CellKey::Whole),
            CellValue::Whole(_)
        ));
    }
}
