//! Consistency relaxations (§5.3).
//!
//! Beyond the baseline checks, JANUS supports a user-provided
//! specification of consistency relaxations for data structures of
//! choice: tolerating read-after-write (RAW) conflicts drops the
//! `SAMEREAD` checks for the structure's locations, and tolerating
//! write-after-write (WAW) conflicts drops the final `COMMUTE` test.
//! JANUS also performs limited automatic inference: when out-of-order
//! parallelization is permitted, WAW dependency chains between
//! transactions whose reads are all covered by their own prior writes can
//! be ignored — the final value is whichever transaction commits last,
//! which coincides with a legal serial order.

use std::collections::BTreeMap;

use janus_log::{ClassId, Op};

use crate::projection::observes;

/// The relaxations in force for one data-structure class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Relaxation {
    /// Tolerate read-after-write conflicts: drop `SAMEREAD` checks.
    pub tolerate_raw: bool,
    /// Tolerate write-after-write conflicts: drop the `COMMUTE` test.
    pub tolerate_waw: bool,
}

impl Relaxation {
    /// No relaxation: full sequence checks (the default).
    pub fn strict() -> Self {
        Relaxation::default()
    }

    /// Tolerates RAW conflicts only.
    pub fn raw() -> Self {
        Relaxation {
            tolerate_raw: true,
            tolerate_waw: false,
        }
    }

    /// Tolerates WAW conflicts only.
    pub fn waw() -> Self {
        Relaxation {
            tolerate_raw: false,
            tolerate_waw: true,
        }
    }

    /// The union of two relaxations.
    pub fn union(self, other: Relaxation) -> Relaxation {
        Relaxation {
            tolerate_raw: self.tolerate_raw || other.tolerate_raw,
            tolerate_waw: self.tolerate_waw || other.tolerate_waw,
        }
    }
}

/// Per-class relaxation specification, plus the out-of-order WAW
/// inference switch.
#[derive(Debug, Clone, Default)]
pub struct RelaxationSpec {
    per_class: BTreeMap<ClassId, Relaxation>,
    /// When true (unordered runs), WAW chains between sequences whose
    /// reads are all self-covered are tolerated automatically.
    pub infer_waw_out_of_order: bool,
}

impl RelaxationSpec {
    /// A specification with no relaxations.
    pub fn new() -> Self {
        RelaxationSpec::default()
    }

    /// Declares a relaxation for a class, merging with any prior
    /// declaration.
    pub fn relax(&mut self, class: ClassId, relaxation: Relaxation) -> &mut Self {
        let entry = self.per_class.entry(class).or_default();
        *entry = entry.union(relaxation);
        self
    }

    /// Enables the automatic WAW inference (sound only for out-of-order
    /// runs).
    pub fn with_ooo_inference(mut self) -> Self {
        self.infer_waw_out_of_order = true;
        self
    }

    /// The static relaxation declared for a class.
    pub fn for_class(&self, class: &ClassId) -> Relaxation {
        self.per_class.get(class).copied().unwrap_or_default()
    }

    /// The effective relaxation for a pair of concurrent subsequences of
    /// a class: the declared relaxation, widened by the automatic WAW
    /// inference when enabled.
    pub fn effective(&self, class: &ClassId, txn: &[&Op], committed: &[&Op]) -> Relaxation {
        let mut r = self.for_class(class);
        if self.infer_waw_out_of_order && !r.tolerate_waw && infer_waw_tolerance(txn, committed) {
            r.tolerate_waw = true;
        }
        r
    }
}

/// Whether every observing operation in `ops` is *covered* by the
/// subsequence's own earlier writes — its read footprint falls entirely
/// within cells the subsequence has already written, so the location is
/// defined before it is read (Figure 4's pattern) and the observation
/// cannot be influenced by concurrent transactions.
fn reads_self_covered(ops: &[&Op]) -> bool {
    let mut written = janus_relational::CellSet::Empty;
    for op in ops {
        if observes(op) && !op.footprint.read.subset_of(&written) {
            return false;
        }
        written.extend(&op.footprint.write);
    }
    true
}

/// The automatic WAW-tolerance inference of §5.3: two subsequences form
/// an ignorable WAW chain when both write, and neither exposes a read
/// that is not covered by its own prior write. In that case the cell's
/// final value is the last committer's — which matches the serial order
/// in which that transaction runs last, so out-of-order runs may ignore
/// the non-commutativity.
pub fn infer_waw_tolerance(a: &[&Op], b: &[&Op]) -> bool {
    let a_writes = a.iter().any(|op| op.is_write());
    let b_writes = b.iter().any(|op| op.is_write());
    a_writes && b_writes && reads_self_covered(a) && reads_self_covered(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_log::{LocId, OpKind, ScalarOp};
    use janus_relational::{Scalar, Value};

    fn mk_ops(kinds: Vec<OpKind>) -> Vec<Op> {
        let mut v = Value::int(0);
        kinds
            .into_iter()
            .map(|k| Op::execute(LocId(0), ClassId::new("t"), k, &mut v).0)
            .collect()
    }

    fn refs(ops: &[Op]) -> Vec<&Op> {
        ops.iter().collect()
    }

    #[test]
    fn relaxation_union() {
        assert_eq!(
            Relaxation::raw().union(Relaxation::waw()),
            Relaxation {
                tolerate_raw: true,
                tolerate_waw: true
            }
        );
        assert_eq!(
            Relaxation::strict().union(Relaxation::strict()),
            Relaxation::strict()
        );
    }

    #[test]
    fn spec_merges_declarations() {
        let mut spec = RelaxationSpec::new();
        spec.relax(ClassId::new("ctx"), Relaxation::raw());
        spec.relax(ClassId::new("ctx"), Relaxation::waw());
        let r = spec.for_class(&ClassId::new("ctx"));
        assert!(r.tolerate_raw && r.tolerate_waw);
        assert_eq!(spec.for_class(&ClassId::new("other")), Relaxation::strict());
    }

    #[test]
    fn waw_inference_requires_covered_reads() {
        let write_then_read = mk_ops(vec![
            OpKind::Scalar(ScalarOp::Write(Scalar::Int(1))),
            OpKind::Scalar(ScalarOp::Read),
        ]);
        let read_then_write = mk_ops(vec![
            OpKind::Scalar(ScalarOp::Read),
            OpKind::Scalar(ScalarOp::Write(Scalar::Int(1))),
        ]);
        let wr = refs(&write_then_read);
        let rw = refs(&read_then_write);
        assert!(infer_waw_tolerance(&wr, &wr));
        assert!(
            !infer_waw_tolerance(&wr, &rw),
            "exposed read blocks inference"
        );
        assert!(!infer_waw_tolerance(&rw, &wr));
    }

    #[test]
    fn waw_inference_requires_both_sides_to_write() {
        let write_only = mk_ops(vec![OpKind::Scalar(ScalarOp::Write(Scalar::Int(1)))]);
        let nothing: Vec<Op> = Vec::new();
        assert!(!infer_waw_tolerance(&refs(&write_only), &refs(&nothing)));
    }

    #[test]
    fn effective_combines_static_and_inferred() {
        let write_then_read = mk_ops(vec![
            OpKind::Scalar(ScalarOp::Write(Scalar::Int(1))),
            OpKind::Scalar(ScalarOp::Read),
        ]);
        let wr = refs(&write_then_read);
        let class = ClassId::new("t");

        let spec = RelaxationSpec::new();
        assert!(!spec.effective(&class, &wr, &wr).tolerate_waw);

        let spec = RelaxationSpec::new().with_ooo_inference();
        assert!(spec.effective(&class, &wr, &wr).tolerate_waw);
        assert!(!spec.effective(&class, &wr, &wr).tolerate_raw);
    }
}
