//! The unified metrics registry: counters, log2 histograms, and the
//! [`Snapshot`] trait that absorbs every statistics struct in the
//! workspace behind one interface.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::EventKind;
use crate::recorder::Trace;

/// A point-in-time view of some subsystem's counters. Implemented by
/// `RunStats` (janus-core), `DetectorStats` (janus-detect), `CacheStats`
/// (janus-train) and [`janus_sat::SolverStats`], so one registry absorbs
/// the whole stack.
pub trait Snapshot {
    /// The subsystem prefix ("run", "detector", "cache", "solver").
    fn source(&self) -> &'static str;

    /// The counters at this instant, as (name, value) pairs.
    fn counters(&self) -> Vec<(String, u64)>;
}

impl Snapshot for janus_sat::SolverStats {
    fn source(&self) -> &'static str {
        "solver"
    }

    fn counters(&self) -> Vec<(String, u64)> {
        vec![
            ("decisions".into(), self.decisions),
            ("conflicts".into(), self.conflicts),
            ("propagations".into(), self.propagations),
            ("restarts".into(), self.restarts),
        ]
    }
}

/// A log2-bucketed histogram of `u64` samples: bucket `i` holds samples
/// whose bit length is `i` (bucket 0 is the zero sample), so 65 buckets
/// cover the full range with constant memory and O(1) observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.buckets[(64 - v.leading_zeros()) as usize] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Rebuilds a histogram from externally accumulated log2 buckets
    /// (e.g. a bank of atomics updated concurrently and drained once at
    /// run exit). The count is derived from the buckets.
    pub fn from_log2_buckets(buckets: [u64; 65], sum: u64, max: u64) -> Self {
        Histogram {
            buckets,
            count: buckets.iter().sum(),
            sum,
            max,
        }
    }

    /// Folds another histogram's samples into this one. Log2 buckets
    /// merge losslessly: bucket-wise addition.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The mean sample, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `p`-th percentile (0..=100): the upper edge
    /// of the log2 bucket the percentile falls into.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket i holds samples in [2^(i-1), 2^i).
                return match i {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
            }
        }
        self.max
    }

    /// A one-line rendering: count, mean, p50/p99 bounds, max.
    pub fn render(&self) -> String {
        format!(
            "n={} mean={:.1} p50<={} p99<={} max={}",
            self.count,
            self.mean(),
            self.percentile(50.0),
            self.percentile(99.0),
            self.max
        )
    }
}

/// The unified registry: named monotone counters plus named log2
/// histograms, populated from [`Snapshot`]s and recorded traces.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds to a named counter.
    pub fn add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Records a sample into a named histogram.
    pub fn observe(&mut self, name: &str, v: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    /// A counter's value (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram, if any sample was recorded under the name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Folds a pre-aggregated histogram into the named one (how the
    /// sharded runtime's per-shard lock-wait banks reach the registry).
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// Absorbs a subsystem snapshot: every counter lands under
    /// `<source>.<name>`.
    pub fn absorb(&mut self, snap: &dyn Snapshot) {
        let source = snap.source();
        for (name, v) in snap.counters() {
            self.add(&format!("{source}.{name}"), v);
        }
    }

    /// Absorbs a recorded trace: per-kind event counts under
    /// `trace.<kind>`, plus the derived histograms
    ///
    /// * `validation_latency_ns` — first validation to commit/abort,
    ///   per attempt;
    /// * `window_segments` — committed segments per fetched window;
    /// * `ops_scanned_per_attempt` — operations scanned by per-cell
    ///   checks, summed over each attempt;
    /// * `backoff_steps` — scheduler backoff wait lengths.
    ///
    /// Aborts additionally count under `trace.abort.<reason>`, and
    /// degradation onsets under `trace.degrade_on`.
    pub fn absorb_trace(&mut self, trace: &Trace) {
        for t in &trace.threads {
            let mut validate_open_ts: Option<u64> = None;
            let mut attempt_ops: u64 = 0;
            for e in &t.events {
                self.add(&format!("trace.{}", e.kind.label()), 1);
                match &e.kind {
                    EventKind::Begin { .. } => {
                        validate_open_ts = None;
                        attempt_ops = 0;
                    }
                    EventKind::ValidateOpen { window_segments } => {
                        validate_open_ts.get_or_insert(e.ts_ns);
                        self.observe("window_segments", *window_segments);
                    }
                    EventKind::DeltaRevalidate { window_segments } => {
                        self.observe("window_segments", *window_segments);
                    }
                    EventKind::PerCellCheck { ops_scanned, .. } => {
                        attempt_ops += ops_scanned;
                    }
                    EventKind::Commit { .. } | EventKind::Abort { .. } => {
                        if let EventKind::Abort { reason, .. } = &e.kind {
                            self.add(&format!("trace.abort.{}", reason.label()), 1);
                        }
                        if let Some(t0) = validate_open_ts.take() {
                            self.observe("validation_latency_ns", e.ts_ns.saturating_sub(t0));
                        }
                        self.observe("ops_scanned_per_attempt", attempt_ops);
                        attempt_ops = 0;
                    }
                    EventKind::SchedBackoff { steps, .. } => {
                        self.observe("backoff_steps", *steps);
                    }
                    EventKind::SchedSteal { tasks, .. } => {
                        self.observe("steal_batch_tasks", *tasks);
                    }
                    EventKind::SchedDegrade { on } => {
                        if *on {
                            self.add("trace.degrade_on", 1);
                        }
                    }
                    EventKind::GcReclaim { reclaimed } => {
                        self.add("trace.gc_reclaimed_entries", *reclaimed);
                    }
                }
            }
        }
        self.add("trace.dropped_events", trace.dropped());
    }

    /// Renders the registry as an aligned text block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.histograms.keys())
            .map(String::len)
            .max()
            .unwrap_or(0);
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name:<width$}  {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "{name:<width$}  {}", h.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 1010);
        assert!(h.percentile(50.0) <= 3, "median bound within small buckets");
        assert_eq!(h.percentile(100.0), 1023, "top bucket upper edge");
        assert_eq!(Histogram::default().percentile(99.0), 0);
    }

    #[test]
    fn registry_counters_and_render() {
        let mut m = MetricsRegistry::new();
        m.add("run.commits", 5);
        m.add("run.commits", 2);
        m.observe("lat", 8);
        assert_eq!(m.counter("run.commits"), 7);
        assert_eq!(m.counter("absent"), 0);
        assert_eq!(m.histogram("lat").unwrap().count(), 1);
        let text = m.render();
        assert!(text.contains("run.commits") && text.contains('7'));
        assert!(text.contains("lat"));
    }

    #[test]
    fn solver_stats_snapshot() {
        let stats = janus_sat::SolverStats {
            decisions: 3,
            conflicts: 1,
            propagations: 9,
            restarts: 0,
        };
        let mut m = MetricsRegistry::new();
        m.absorb(&stats);
        assert_eq!(m.counter("solver.decisions"), 3);
        assert_eq!(m.counter("solver.propagations"), 9);
    }
}
