//! The transaction-lifecycle event model.

use janus_log::{ClassId, LocId};

/// The outcome of one per-cell conflict check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The cell's subsequences were found compatible.
    Pass,
    /// The cell's subsequences conflict: the attempt will abort.
    Conflict,
}

impl Verdict {
    /// A short lower-case label ("pass" / "conflict").
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Conflict => "conflict",
        }
    }
}

/// Which rule decided a per-cell verdict — the abort-attribution axis:
/// a conflict's reason names the check that failed, a pass's reason
/// names the check that admitted the interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CheckReason {
    /// The `SAMEREAD` direction of Figure 8 (an exposed read observes a
    /// different value when the other subsequence runs first).
    SameRead,
    /// The `COMMUTE` direction of Figure 8 (the cell's final value
    /// depends on the evaluation order).
    Commute,
    /// The write-set overlap test (read/write or write/write on a
    /// common cell).
    WritesetOverlap,
    /// The commutativity cache missed and the write-set fallback
    /// decided the verdict.
    CacheMiss,
}

impl CheckReason {
    /// A short lower-case label ("sameread", "commute",
    /// "writeset-overlap", "cache-miss").
    pub fn label(self) -> &'static str {
        match self {
            CheckReason::SameRead => "sameread",
            CheckReason::Commute => "commute",
            CheckReason::WritesetOverlap => "writeset-overlap",
            CheckReason::CacheMiss => "cache-miss",
        }
    }
}

/// Why an attempt ended in an abort — the terminal-event axis of abort
/// attribution. Conflicts are the detector speaking; poisoned bailouts
/// are the runtime draining ordered waiters (and panicked attempts) out
/// of a run that can never complete, and must not be mistaken for
/// contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AbortReason {
    /// A per-cell conflict check failed; the task will retry.
    Conflict,
    /// The run was poisoned by a panic: an ordered waiter whose
    /// predecessor will never commit bailed out, or the panicking
    /// attempt itself was closed. The task will *not* retry.
    Poisoned,
    /// The task's body panicked under `PanicPolicy::Isolate`: its
    /// transaction was discarded and the task recorded as failed, but
    /// the run continues — unlike [`AbortReason::Poisoned`], only this
    /// one task is lost. The task will *not* retry.
    Failed,
}

impl AbortReason {
    /// A short lower-case label ("conflict" / "poisoned" / "failed").
    pub fn label(self) -> &'static str {
        match self {
            AbortReason::Conflict => "conflict",
            AbortReason::Poisoned => "poisoned",
            AbortReason::Failed => "failed",
        }
    }
}

/// One lifecycle event. Payload-only: the commit clock and monotonic
/// timestamp live on the enclosing [`Event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// `CREATETRANSACTION`: an attempt of task `task` begins (the clock
    /// stamp is the attempt's begin time).
    Begin {
        /// The 1-based task id (= its commit position in ordered runs).
        task: u64,
    },
    /// The first validation of an attempt fetched its conflict window.
    ValidateOpen {
        /// Committed segments in the window `[begin, now)`.
        window_segments: u64,
    },
    /// The commit clock advanced mid-validation; only the delta window
    /// is re-checked.
    DeltaRevalidate {
        /// Committed segments in the delta `[validated_to, now)`.
        window_segments: u64,
    },
    /// One per-cell conflict check ran.
    PerCellCheck {
        /// The location whose cell was checked.
        loc: LocId,
        /// The location's static class.
        class: ClassId,
        /// The check's outcome.
        verdict: Verdict,
        /// Which rule decided the verdict.
        reason: CheckReason,
        /// Operations scanned by the check (both subsequences).
        ops_scanned: u64,
    },
    /// The attempt aborted; see [`AbortReason`] for whether the task
    /// restarts from a fresh snapshot (conflict) or is abandoned
    /// (poisoned run).
    Abort {
        /// The aborting task's id.
        task: u64,
        /// Why the attempt ended without committing.
        reason: AbortReason,
    },
    /// The scheduler delayed an aborted task's retry (the wait happens
    /// between this attempt's `abort` and the next `begin`).
    SchedBackoff {
        /// The backing-off task's id.
        task: u64,
        /// Wait length, in backoff steps.
        steps: u64,
    },
    /// The degradation feedback loop flipped state: `on = true` means
    /// retries of hot tasks now serialize; `on = false` means full
    /// parallelism re-opened.
    SchedDegrade {
        /// The new degradation state.
        on: bool,
    },
    /// An idle worker stole a batch of queued tasks from a loaded
    /// worker; `task` is the first stolen task (the one the thief runs
    /// next), the rest are staged for later dispatch.
    SchedSteal {
        /// The first stolen task's id.
        task: u64,
        /// Tasks transferred by the steal (including `task`).
        tasks: u64,
    },
    /// The attempt committed (the clock stamp is the post-commit clock).
    Commit {
        /// The committing task's id.
        task: u64,
    },
    /// History GC reclaimed committed logs below the horizon.
    GcReclaim {
        /// Entries reclaimed by this pass.
        reclaimed: u64,
    },
}

impl EventKind {
    /// A short lower-case label for the event kind.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Begin { .. } => "begin",
            EventKind::ValidateOpen { .. } => "validate_open",
            EventKind::DeltaRevalidate { .. } => "delta_revalidate",
            EventKind::PerCellCheck { .. } => "per_cell_check",
            EventKind::Abort { .. } => "abort",
            EventKind::SchedBackoff { .. } => "sched_backoff",
            EventKind::SchedDegrade { .. } => "sched_degrade",
            EventKind::SchedSteal { .. } => "sched_steal",
            EventKind::Commit { .. } => "commit",
            EventKind::GcReclaim { .. } => "gc_reclaim",
        }
    }
}

/// One recorded event: a lifecycle payload stamped with the commit clock
/// observed when it was recorded and a monotonic timestamp relative to
/// the recorder's epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// The commit clock observed at record time.
    pub clock: u64,
    /// Nanoseconds since the recorder's epoch (monotonic).
    pub ts_ns: u64,
    /// The lifecycle payload.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(Verdict::Conflict.label(), "conflict");
        assert_eq!(CheckReason::SameRead.label(), "sameread");
        assert_eq!(CheckReason::CacheMiss.label(), "cache-miss");
        assert_eq!(EventKind::Begin { task: 1 }.label(), "begin");
        assert_eq!(EventKind::GcReclaim { reclaimed: 2 }.label(), "gc_reclaim");
        assert_eq!(AbortReason::Conflict.label(), "conflict");
        assert_eq!(AbortReason::Poisoned.label(), "poisoned");
        assert_eq!(AbortReason::Failed.label(), "failed");
        assert_eq!(
            EventKind::SchedBackoff { task: 1, steps: 4 }.label(),
            "sched_backoff"
        );
        assert_eq!(
            EventKind::SchedDegrade { on: true }.label(),
            "sched_degrade"
        );
        assert_eq!(
            EventKind::SchedSteal { task: 3, tasks: 4 }.label(),
            "sched_steal"
        );
    }
}
