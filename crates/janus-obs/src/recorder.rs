//! Per-thread event rings and the recorder that collects them.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{AbortReason, Event, EventKind, Verdict};

/// The trace recorder: hands out one [`RingHandle`] per worker thread
/// and collects their event rings when the handles drop.
///
/// The recorder itself is contended only at registration and teardown;
/// the recording hot path is confined to the owning thread's ring.
#[derive(Debug)]
pub struct Recorder {
    epoch: Instant,
    capacity: usize,
    next_tid: AtomicU64,
    finished: Mutex<Vec<ThreadTrace>>,
}

impl Recorder {
    /// Default per-thread ring capacity, in events.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Creates a recorder with the default per-thread ring capacity.
    pub fn new() -> Arc<Recorder> {
        Recorder::with_capacity(Recorder::DEFAULT_CAPACITY)
    }

    /// Creates a recorder whose per-thread rings hold at most `capacity`
    /// events; once full, the oldest events are overwritten (and counted
    /// as dropped), so a long run keeps its most recent history.
    pub fn with_capacity(capacity: usize) -> Arc<Recorder> {
        assert!(capacity >= 1, "ring capacity must be positive");
        Arc::new(Recorder {
            epoch: Instant::now(),
            capacity,
            next_tid: AtomicU64::new(0),
            finished: Mutex::new(Vec::new()),
        })
    }

    /// Registers the calling worker thread: returns the handle it
    /// records through. The ring is flushed back into the recorder when
    /// the handle drops.
    pub fn register(self: &Arc<Self>, label: impl Into<String>) -> RingHandle {
        RingHandle {
            recorder: Arc::clone(self),
            tid: self.next_tid.fetch_add(1, Ordering::Relaxed),
            label: label.into(),
            clock: Cell::new(0),
            ring: RefCell::new(Ring {
                buf: Vec::new(),
                head: 0,
                dropped: 0,
            }),
        }
    }

    /// Collects every flushed thread trace, ordered by registration.
    /// Call after all handles have dropped (e.g. after the worker scope
    /// ends); handles still live at this point simply contribute later.
    pub fn finish(&self) -> Trace {
        let mut threads = std::mem::take(&mut *self.finished.lock().expect("recorder mutex"));
        threads.sort_by_key(|t| t.tid);
        Trace { threads }
    }
}

#[derive(Debug)]
struct Ring {
    buf: Vec<Event>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

/// One worker thread's recording handle: an exclusively-owned bounded
/// event ring plus the thread's view of the commit clock.
///
/// The handle is deliberately `!Sync`: all recording goes through a
/// shared reference on the owning thread, with no atomics and no locks.
/// Instrumentation sites receive `Option<&RingHandle>` — the disabled
/// path is a single branch and performs zero allocations.
#[derive(Debug)]
pub struct RingHandle {
    recorder: Arc<Recorder>,
    tid: u64,
    label: String,
    clock: Cell<u64>,
    ring: RefCell<Ring>,
}

impl RingHandle {
    /// Updates the commit-clock stamp used by subsequent [`record`]
    /// calls (the runtime refreshes it whenever it reads the clock).
    ///
    /// [`record`]: RingHandle::record
    pub fn set_clock(&self, clock: u64) {
        self.clock.set(clock);
    }

    /// The current commit-clock stamp.
    pub fn clock(&self) -> u64 {
        self.clock.get()
    }

    /// Records one event, stamped with the handle's current clock and
    /// the elapsed monotonic time. Allocation-free once the ring has
    /// reached capacity; until then it grows the preallocated buffer
    /// amortized, like any `Vec` push.
    pub fn record(&self, kind: EventKind) {
        let ts_ns = u64::try_from(self.recorder.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let event = Event {
            clock: self.clock.get(),
            ts_ns,
            kind,
        };
        let capacity = self.recorder.capacity;
        let mut ring = self.ring.borrow_mut();
        if ring.buf.len() < capacity {
            ring.buf.push(event);
        } else {
            let head = ring.head;
            ring.buf[head] = event;
            ring.head = (head + 1) % capacity;
            ring.dropped += 1;
        }
    }
}

impl Drop for RingHandle {
    fn drop(&mut self) {
        let ring = self.ring.get_mut();
        // Rotate so events come out oldest-first.
        let mut events = std::mem::take(&mut ring.buf);
        events.rotate_left(ring.head);
        self.recorder
            .finished
            .lock()
            .expect("recorder mutex")
            .push(ThreadTrace {
                tid: self.tid,
                label: std::mem::take(&mut self.label),
                events,
                dropped: ring.dropped,
            });
    }
}

/// One worker thread's recorded events, oldest first.
#[derive(Debug, Clone)]
pub struct ThreadTrace {
    /// Registration-order thread id (the Chrome-trace track id).
    pub tid: u64,
    /// The thread's label ("worker-0", ...).
    pub label: String,
    /// The recorded events, in recording order.
    pub events: Vec<Event>,
    /// Events overwritten because the ring was full.
    pub dropped: u64,
}

/// A completed trace: every worker thread's event ring.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Per-thread traces, ordered by registration.
    pub threads: Vec<ThreadTrace>,
}

impl Trace {
    /// Iterates over every event of every thread.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.threads.iter().flat_map(|t| t.events.iter())
    }

    /// Total events recorded (excluding dropped ones).
    pub fn len(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten across all rings.
    pub fn dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }

    /// Number of events whose kind label is `label`.
    pub fn count(&self, label: &str) -> u64 {
        self.events().filter(|e| e.kind.label() == label).count() as u64
    }

    /// Aborts carrying the given reason.
    pub fn aborts_with_reason(&self, reason: AbortReason) -> u64 {
        self.events()
            .filter(|e| matches!(e.kind, EventKind::Abort { reason: r, .. } if r == reason))
            .count() as u64
    }

    /// Per-cell checks that returned a conflict verdict.
    pub fn conflict_checks(&self) -> u64 {
        self.events()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::PerCellCheck {
                        verdict: Verdict::Conflict,
                        ..
                    }
                )
            })
            .count() as u64
    }

    /// Checks lifecycle well-formedness per thread: every `begin` is
    /// closed by exactly one `commit` or `abort` of the same task before
    /// the next `begin`, validation and per-cell events occur only
    /// inside an open attempt, and timestamps are monotone within each
    /// thread. Returns the first violation found. Traces with dropped
    /// events are rejected (their prefix is gone).
    pub fn check_well_formed(&self) -> Result<(), String> {
        for t in &self.threads {
            if t.dropped > 0 {
                return Err(format!(
                    "thread {} dropped {} events; the trace is partial",
                    t.label, t.dropped
                ));
            }
            let mut open: Option<u64> = None;
            let mut last_ts = 0u64;
            for (i, e) in t.events.iter().enumerate() {
                if e.ts_ns < last_ts {
                    return Err(format!(
                        "thread {} event {i}: timestamp regressed ({} < {last_ts})",
                        t.label, e.ts_ns
                    ));
                }
                last_ts = e.ts_ns;
                match (&e.kind, open) {
                    (EventKind::Begin { task }, None) => open = Some(*task),
                    (EventKind::Begin { .. }, Some(prev)) => {
                        return Err(format!(
                            "thread {} event {i}: begin while task {prev} is still open",
                            t.label
                        ));
                    }
                    (EventKind::Commit { task } | EventKind::Abort { task, .. }, Some(prev)) => {
                        if *task != prev {
                            return Err(format!(
                                "thread {} event {i}: task {task} closed an attempt \
                                 opened by task {prev}",
                                t.label
                            ));
                        }
                        open = None;
                    }
                    (EventKind::Commit { .. } | EventKind::Abort { .. }, None) => {
                        return Err(format!(
                            "thread {} event {i}: {} without an open attempt",
                            t.label,
                            e.kind.label()
                        ));
                    }
                    (
                        EventKind::ValidateOpen { .. }
                        | EventKind::DeltaRevalidate { .. }
                        | EventKind::PerCellCheck { .. },
                        None,
                    ) => {
                        return Err(format!(
                            "thread {} event {i}: {} outside any attempt",
                            t.label,
                            e.kind.label()
                        ));
                    }
                    _ => {}
                }
            }
            if let Some(task) = open {
                return Err(format!(
                    "thread {}: attempt of task {task} never closed",
                    t.label
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin(h: &RingHandle, task: u64) {
        h.record(EventKind::Begin { task });
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let rec = Recorder::with_capacity(4);
        {
            let h = rec.register("w0");
            for task in 1..=6 {
                begin(&h, task);
            }
        }
        let trace = rec.finish();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.dropped(), 2);
        let tasks: Vec<u64> = trace
            .events()
            .map(|e| match e.kind {
                EventKind::Begin { task } => task,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(
            tasks,
            vec![3, 4, 5, 6],
            "oldest events overwritten, order kept"
        );
    }

    #[test]
    fn clock_and_timestamps_are_stamped() {
        let rec = Recorder::new();
        {
            let h = rec.register("w0");
            h.set_clock(7);
            begin(&h, 1);
            h.set_clock(8);
            h.record(EventKind::Commit { task: 1 });
        }
        let trace = rec.finish();
        let events: Vec<&Event> = trace.events().collect();
        assert_eq!(events[0].clock, 7);
        assert_eq!(events[1].clock, 8);
        assert!(events[0].ts_ns <= events[1].ts_ns, "monotone timestamps");
        assert_eq!(trace.threads[0].label, "w0");
    }

    #[test]
    fn well_formedness_accepts_and_rejects() {
        let rec = Recorder::new();
        {
            let h = rec.register("w0");
            begin(&h, 1);
            h.record(EventKind::ValidateOpen { window_segments: 0 });
            h.record(EventKind::Abort {
                task: 1,
                reason: AbortReason::Conflict,
            });
            // Scheduler events are legal between attempts.
            h.record(EventKind::SchedBackoff { task: 1, steps: 3 });
            h.record(EventKind::SchedDegrade { on: true });
            begin(&h, 1);
            h.record(EventKind::Commit { task: 1 });
        }
        let trace = rec.finish();
        assert!(trace.check_well_formed().is_ok());
        assert_eq!(trace.aborts_with_reason(AbortReason::Conflict), 1);
        assert_eq!(trace.aborts_with_reason(AbortReason::Poisoned), 0);

        let rec = Recorder::new();
        {
            let h = rec.register("w0");
            begin(&h, 1);
            begin(&h, 2); // nested begin: malformed
        }
        assert!(rec.finish().check_well_formed().is_err());

        let rec = Recorder::new();
        {
            let h = rec.register("w0");
            h.record(EventKind::Commit { task: 1 }); // commit without begin
        }
        assert!(rec.finish().check_well_formed().is_err());
    }

    #[test]
    fn multiple_threads_sorted_by_registration() {
        let rec = Recorder::new();
        let h1 = rec.register("w1");
        let h0 = rec.register("w0-but-second");
        drop(h0);
        drop(h1);
        let trace = rec.finish();
        assert_eq!(trace.threads.len(), 2);
        assert_eq!(trace.threads[0].label, "w1");
        assert_eq!(trace.threads[0].tid, 0);
    }
}
