//! Observability for the JANUS runtime: transaction-lifecycle tracing,
//! abort attribution and a unified metrics registry.
//!
//! JANUS's value proposition is quantitative — retry ratios (Figure 10),
//! cache miss rates (Figure 11), "which data structure serializes this
//! benchmark" (§7.2) — so the runtime carries an observability layer
//! cheap enough to leave on:
//!
//! * [`Event`] / [`EventKind`] — the transaction lifecycle (`begin`,
//!   `validate_open`, `delta_revalidate`, per-cell conflict checks with
//!   their verdict and reason, `abort`, `commit`, `gc_reclaim`), each
//!   stamped with the commit clock it was observed at and a monotonic
//!   timestamp, so traces can be replayed and checked offline.
//! * [`Recorder`] / [`RingHandle`] — per-thread bounded event rings.
//!   Each worker thread owns its ring exclusively, so the recording hot
//!   path takes no lock and performs no allocation; instrumentation
//!   sites branch on an `Option` handle, so a disabled recorder costs
//!   one predictable branch.
//! * [`MetricsRegistry`] / [`Snapshot`] — one sink for every statistics
//!   struct in the workspace (`RunStats`, `DetectorStats`, `CacheStats`,
//!   `SolverStats`), plus log2 histograms for validation latency, window
//!   length and ops scanned per attempt, derived from the event stream.
//! * [`chrome_trace_json`] — a `chrome://tracing`-loadable JSON export,
//!   one track per worker thread.
//! * [`text_report`] — a human report naming the top abort-causing
//!   location classes and locations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod event;
mod metrics;
mod recorder;
mod report;

pub use chrome::chrome_trace_json;
pub use event::{AbortReason, CheckReason, Event, EventKind, Verdict};
pub use metrics::{Histogram, MetricsRegistry, Snapshot};
pub use recorder::{Recorder, RingHandle, ThreadTrace, Trace};
pub use report::{attribution, text_report, AbortAttribution};
