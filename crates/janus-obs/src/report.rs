//! The human text report: lifecycle totals plus abort attribution —
//! which location classes, locations and check rules caused the aborts.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use janus_log::LocId;

use crate::event::{AbortReason, EventKind, Verdict};
use crate::recorder::Trace;

/// Aggregated abort attribution extracted from a trace: conflicting
/// per-cell checks grouped by class, location and deciding rule, each
/// sorted most-conflicted first.
#[derive(Debug, Clone, Default)]
pub struct AbortAttribution {
    /// Conflicting cells per location class.
    pub by_class: Vec<(String, u64)>,
    /// Conflicting cells per location.
    pub by_loc: Vec<(LocId, u64)>,
    /// Conflicting cells per deciding rule ("sameread", ...).
    pub by_reason: Vec<(&'static str, u64)>,
}

/// Attributes every conflicting per-cell check in the trace.
pub fn attribution(trace: &Trace) -> AbortAttribution {
    let mut by_class: BTreeMap<String, u64> = BTreeMap::new();
    let mut by_loc: BTreeMap<LocId, u64> = BTreeMap::new();
    let mut by_reason: BTreeMap<&'static str, u64> = BTreeMap::new();
    for e in trace.events() {
        if let EventKind::PerCellCheck {
            loc,
            class,
            verdict: Verdict::Conflict,
            reason,
            ..
        } = &e.kind
        {
            *by_class.entry(class.label().to_string()).or_insert(0) += 1;
            *by_loc.entry(*loc).or_insert(0) += 1;
            *by_reason.entry(reason.label()).or_insert(0) += 1;
        }
    }
    fn sort<K: Ord>(m: BTreeMap<K, u64>) -> Vec<(K, u64)> {
        let mut v: Vec<_> = m.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }
    AbortAttribution {
        by_class: sort(by_class),
        by_loc: sort(by_loc),
        by_reason: sort(by_reason),
    }
}

/// Renders the trace as a human report: per-kind event totals, then the
/// top-`top_k` abort-causing classes and locations with their deciding
/// rules.
pub fn text_report(trace: &Trace, top_k: usize) -> String {
    let mut out = String::new();
    let commits = trace.count("commit");
    let aborts = trace.count("abort");
    let _ = writeln!(
        out,
        "trace: {} events on {} threads ({} dropped)",
        trace.len(),
        trace.threads.len(),
        trace.dropped()
    );
    let _ = writeln!(
        out,
        "lifecycle: {} begin  {} commit  {} abort  {} validate_open  \
         {} delta_revalidate  {} per_cell_check  {} gc_reclaim",
        trace.count("begin"),
        commits,
        aborts,
        trace.count("validate_open"),
        trace.count("delta_revalidate"),
        trace.count("per_cell_check"),
        trace.count("gc_reclaim"),
    );
    if commits > 0 {
        let _ = writeln!(out, "retry ratio: {:.3}", aborts as f64 / commits as f64);
    }
    if aborts > 0 {
        let _ = writeln!(
            out,
            "aborts by reason: {} conflict  {} poisoned  {} failed",
            trace.aborts_with_reason(AbortReason::Conflict),
            trace.aborts_with_reason(AbortReason::Poisoned),
            trace.aborts_with_reason(AbortReason::Failed),
        );
    }
    let backoffs = trace.count("sched_backoff");
    let steals = trace.count("sched_steal");
    if backoffs > 0 || steals > 0 {
        let _ = writeln!(out, "scheduler: {backoffs} backoff waits  {steals} steals");
    }
    let attr = attribution(trace);
    if attr.by_class.is_empty() {
        let _ = writeln!(out, "no conflicting cells recorded");
        return out;
    }
    let _ = writeln!(out, "top abort-causing classes:");
    for (class, n) in attr.by_class.iter().take(top_k) {
        let _ = writeln!(out, "  {class:<24} {n}");
    }
    let _ = writeln!(out, "top abort-causing locations:");
    for (loc, n) in attr.by_loc.iter().take(top_k) {
        let _ = writeln!(out, "  {loc:<24} {n}");
    }
    let _ = writeln!(out, "conflicts by deciding rule:");
    for (reason, n) in &attr.by_reason {
        let _ = writeln!(out, "  {reason:<24} {n}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CheckReason;
    use crate::recorder::Recorder;
    use janus_log::ClassId;

    #[test]
    fn attribution_ranks_classes() {
        let rec = Recorder::new();
        {
            let h = rec.register("w0");
            h.record(EventKind::Begin { task: 1 });
            for (i, class) in [(0u64, "hot"), (1, "hot"), (2, "cold")] {
                h.record(EventKind::PerCellCheck {
                    loc: LocId(i),
                    class: ClassId::new(class),
                    verdict: Verdict::Conflict,
                    reason: CheckReason::Commute,
                    ops_scanned: 2,
                });
            }
            h.record(EventKind::PerCellCheck {
                loc: LocId(9),
                class: ClassId::new("benign"),
                verdict: Verdict::Pass,
                reason: CheckReason::Commute,
                ops_scanned: 2,
            });
            h.record(EventKind::Abort {
                task: 1,
                reason: AbortReason::Conflict,
            });
            h.record(EventKind::SchedBackoff { task: 1, steps: 2 });
            h.record(EventKind::Begin { task: 1 });
            h.record(EventKind::Commit { task: 1 });
        }
        let trace = rec.finish();
        let attr = attribution(&trace);
        assert_eq!(attr.by_class[0], ("hot".to_string(), 2));
        assert_eq!(attr.by_class.len(), 2, "passing checks are not attributed");
        assert_eq!(attr.by_reason, vec![("commute", 3)]);
        let report = text_report(&trace, 5);
        assert!(report.contains("top abort-causing classes"));
        assert!(report.contains("hot"));
        assert!(report.contains("retry ratio: 1.000"));
        assert!(report.contains("aborts by reason: 1 conflict  0 poisoned  0 failed"));
        assert!(report.contains("scheduler: 1 backoff waits  0 steals"));
    }
}
