//! Chrome-trace JSON export: one track per worker thread, loadable in
//! `chrome://tracing` (or Perfetto's legacy importer).
//!
//! The workspace deliberately carries no serde; events are flat and the
//! emitter below writes the Trace Event Format by hand, escaping every
//! dynamic string.

use std::fmt::Write as _;

use crate::event::EventKind;
use crate::recorder::Trace;

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Microsecond timestamp with nanosecond precision, as Chrome expects.
fn us(ts_ns: u64) -> String {
    format!("{}.{:03}", ts_ns / 1_000, ts_ns % 1_000)
}

fn push_event(out: &mut String, first: &mut bool, body: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("    ");
    out.push_str(body);
}

/// Renders a trace in the Chrome Trace Event Format.
///
/// Tracks: one per worker thread (named after the thread's label).
/// Attempts appear as complete (`"ph":"X"`) spans named
/// `txn <task> (commit|abort)`; validation opens, delta re-validations,
/// conflicting per-cell checks and GC passes appear as thread-scoped
/// instant events with their payload in `args`.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    for t in &trace.threads {
        let mut name = String::new();
        escape(&t.label, &mut name);
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":\"{name}\"}}}}",
                t.tid
            ),
        );
        let mut open: Option<(u64, u64, u64)> = None; // (task, ts_ns, clock)
        for e in &t.events {
            match &e.kind {
                EventKind::Begin { task } => open = Some((*task, e.ts_ns, e.clock)),
                EventKind::Commit { task } | EventKind::Abort { task, .. } => {
                    let (outcome, reason_arg) = match &e.kind {
                        EventKind::Abort { reason, .. } => {
                            ("abort", format!(",\"reason\":\"{}\"", reason.label()))
                        }
                        _ => ("commit", String::new()),
                    };
                    let (_, t0, begin_clock) = open.take().unwrap_or((*task, e.ts_ns, e.clock));
                    push_event(
                        &mut out,
                        &mut first,
                        &format!(
                            "{{\"name\":\"txn {task} {outcome}\",\"cat\":\"txn\",\
                             \"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\
                             \"args\":{{\"task\":{task},\"outcome\":\"{outcome}\",\
                             \"begin_clock\":{begin_clock},\"end_clock\":{}{reason_arg}}}}}",
                            t.tid,
                            us(t0),
                            us(e.ts_ns.saturating_sub(t0)),
                            e.clock
                        ),
                    );
                }
                EventKind::SchedBackoff { task, steps } => {
                    push_event(
                        &mut out,
                        &mut first,
                        &format!(
                            "{{\"name\":\"sched_backoff\",\"cat\":\"sched\",\"ph\":\"i\",\
                             \"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\
                             \"args\":{{\"task\":{task},\"steps\":{steps},\"clock\":{}}}}}",
                            t.tid,
                            us(e.ts_ns),
                            e.clock
                        ),
                    );
                }
                EventKind::SchedSteal { task, tasks } => {
                    push_event(
                        &mut out,
                        &mut first,
                        &format!(
                            "{{\"name\":\"sched_steal\",\"cat\":\"sched\",\"ph\":\"i\",\
                             \"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\
                             \"args\":{{\"task\":{task},\"tasks\":{tasks},\"clock\":{}}}}}",
                            t.tid,
                            us(e.ts_ns),
                            e.clock
                        ),
                    );
                }
                EventKind::SchedDegrade { on } => {
                    push_event(
                        &mut out,
                        &mut first,
                        &format!(
                            "{{\"name\":\"sched_degrade\",\"cat\":\"sched\",\"ph\":\"i\",\
                             \"s\":\"p\",\"pid\":1,\"tid\":{},\"ts\":{},\
                             \"args\":{{\"on\":{on},\"clock\":{}}}}}",
                            t.tid,
                            us(e.ts_ns),
                            e.clock
                        ),
                    );
                }
                EventKind::ValidateOpen { window_segments }
                | EventKind::DeltaRevalidate { window_segments } => {
                    push_event(
                        &mut out,
                        &mut first,
                        &format!(
                            "{{\"name\":\"{}\",\"cat\":\"validate\",\"ph\":\"i\",\"s\":\"t\",\
                             \"pid\":1,\"tid\":{},\"ts\":{},\
                             \"args\":{{\"window_segments\":{window_segments},\"clock\":{}}}}}",
                            e.kind.label(),
                            t.tid,
                            us(e.ts_ns),
                            e.clock
                        ),
                    );
                }
                EventKind::PerCellCheck {
                    loc,
                    class,
                    verdict,
                    reason,
                    ops_scanned,
                } => {
                    // Passing checks are summarized by the metrics layer;
                    // only conflicts become trace instants, keeping the
                    // JSON loadable for contended runs.
                    if *verdict == crate::event::Verdict::Conflict {
                        let mut label = String::new();
                        escape(class.label(), &mut label);
                        push_event(
                            &mut out,
                            &mut first,
                            &format!(
                                "{{\"name\":\"conflict {label}\",\"cat\":\"conflict\",\
                                 \"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\
                                 \"args\":{{\"loc\":\"{loc}\",\"class\":\"{label}\",\
                                 \"reason\":\"{}\",\"ops_scanned\":{ops_scanned},\
                                 \"clock\":{}}}}}",
                                t.tid,
                                us(e.ts_ns),
                                reason.label(),
                                e.clock
                            ),
                        );
                    }
                }
                EventKind::GcReclaim { reclaimed } => {
                    push_event(
                        &mut out,
                        &mut first,
                        &format!(
                            "{{\"name\":\"gc_reclaim\",\"cat\":\"gc\",\"ph\":\"i\",\"s\":\"t\",\
                             \"pid\":1,\"tid\":{},\"ts\":{},\
                             \"args\":{{\"reclaimed\":{reclaimed},\"clock\":{}}}}}",
                            t.tid,
                            us(e.ts_ns),
                            e.clock
                        ),
                    );
                }
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AbortReason, CheckReason, Verdict};
    use crate::recorder::Recorder;
    use janus_log::{ClassId, LocId};

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        let mut s = String::new();
        escape("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn export_contains_spans_and_instants() {
        let rec = Recorder::new();
        {
            let h = rec.register("worker-0");
            h.set_clock(1);
            h.record(EventKind::Begin { task: 1 });
            h.record(EventKind::ValidateOpen { window_segments: 0 });
            h.record(EventKind::PerCellCheck {
                loc: LocId(3),
                class: ClassId::new("hot\"spot"),
                verdict: Verdict::Conflict,
                reason: CheckReason::WritesetOverlap,
                ops_scanned: 4,
            });
            h.record(EventKind::Abort {
                task: 1,
                reason: AbortReason::Conflict,
            });
            h.record(EventKind::SchedBackoff { task: 1, steps: 5 });
            h.record(EventKind::SchedDegrade { on: true });
            h.record(EventKind::SchedSteal { task: 1, tasks: 3 });
            h.record(EventKind::Begin { task: 1 });
            h.set_clock(2);
            h.record(EventKind::Commit { task: 1 });
        }
        let json = chrome_trace_json(&rec.finish());
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("txn 1 abort"));
        assert!(json.contains("\"reason\":\"conflict\""));
        assert!(json.contains("txn 1 commit"));
        assert!(json.contains("conflict hot\\\"spot"));
        assert!(json.contains("\"reason\":\"writeset-overlap\""));
        assert!(json.contains("\"name\":\"sched_backoff\""));
        assert!(json.contains("\"name\":\"sched_steal\""));
        assert!(json.contains("\"tasks\":3"));
        assert!(json.contains("\"steps\":5"));
        assert!(json.contains("\"name\":\"sched_degrade\""));
        assert!(json.contains("\"on\":true"));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        // Balanced braces outside string literals is a decent smoke test
        // for hand-rolled JSON.
        let mut depth = 0i64;
        let mut in_str = false;
        let mut esc = false;
        for c in json.chars() {
            match (in_str, esc, c) {
                (true, true, _) => esc = false,
                (true, false, '\\') => esc = true,
                (true, false, '"') => in_str = false,
                (false, _, '"') => in_str = true,
                (false, _, '{') => depth += 1,
                (false, _, '}') => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }
}
