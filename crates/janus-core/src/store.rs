//! The shared store: location allocation and versioned state.

use std::sync::Arc;

use janus_detect::{EntryState, MapState};
use janus_log::{ClassId, LocId, SHARD_BITS};
use janus_persist::PersistentMap;
use janus_relational::Value;

/// One shared location's metadata and current value.
#[derive(Debug, Clone)]
pub(crate) struct Slot {
    pub class: ClassId,
    pub value: Value,
}

/// The shared state: a persistent map from locations to values, plus the
/// static class of each location.
///
/// Snapshots (`clone`) are O(1), which is what makes `CREATETRANSACTION`'s
/// privatization cheap (§4 "Versioning").
#[derive(Debug, Clone, Default)]
pub struct Store {
    pub(crate) slots: PersistentMap<LocId, Slot>,
    next: u64,
}

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Allocates a fresh shared location of the given class with an
    /// initial value. The class is the generalization key under which
    /// training knowledge about this location is filed.
    ///
    /// The id folds the class's shard hint into its low
    /// [`SHARD_BITS`] bits, so the sharded runtime routes the location
    /// to its class's shard from the id alone; the high bits are the
    /// dense allocation counter.
    pub fn alloc(&mut self, class: impl Into<ClassId>, initial: Value) -> LocId {
        let class = class.into();
        let loc = LocId((self.next << SHARD_BITS) | class.shard_hint());
        self.next += 1;
        self.slots.insert(
            loc,
            Slot {
                class,
                value: initial,
            },
        );
        loc
    }

    /// The current value of a location.
    pub fn value(&self, loc: LocId) -> Option<&Value> {
        self.slots.get(&loc).map(|s| &s.value)
    }

    /// The class of a location.
    pub fn class(&self, loc: LocId) -> Option<&ClassId> {
        self.slots.get(&loc).map(|s| &s.class)
    }

    /// Number of allocated locations.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the store has no locations.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Starts a manually driven transaction against the current state:
    /// an O(1) privatized view whose log can be harvested with
    /// [`crate::TxView::into_log`]. This is the building block for
    /// external schedulers (e.g. the virtual-time simulator in
    /// `janus-bench`); the [`crate::Janus`] runtime drives the same
    /// machinery internally.
    pub fn begin(&self) -> crate::TxView {
        crate::TxView::new(self.slots.clone())
    }

    /// The current state as an [`janus_detect::EntryState`] snapshot
    /// (O(1)).
    pub fn snapshot_state(&self) -> SnapshotState {
        SnapshotState(SnapshotSlots::Single(self.slots.clone()))
    }

    /// Replays a committed operation log onto the store
    /// (`REPLAYLOGGEDOPERATIONS`), grouping per location.
    ///
    /// # Panics
    ///
    /// Panics if an operation targets an unallocated location.
    pub fn apply_log(&mut self, ops: &[janus_log::Op]) {
        let mut touched: std::collections::HashMap<LocId, Slot> = std::collections::HashMap::new();
        for op in ops {
            let slot = touched.entry(op.loc).or_insert_with(|| {
                self.slots
                    .get(&op.loc)
                    .expect("committed op targets an allocated location")
                    .clone()
            });
            op.kind.apply(&mut slot.value);
        }
        for (loc, slot) in touched {
            self.slots.insert(loc, slot);
        }
    }

    /// Replays a decoded effect stream (location + mutating op kind)
    /// onto the store, grouping per location — the recovery-side twin
    /// of [`Store::apply_log`], fed by the durable commit journal,
    /// which persists effects without their footprints or results.
    ///
    /// Returns the first location that is not allocated in this store,
    /// if any — journal replay against a mis-provisioned boot store
    /// must fail loudly, not panic.
    pub fn apply_effects(&mut self, effects: &[(LocId, janus_log::OpKind)]) -> Result<(), LocId> {
        let mut touched: std::collections::HashMap<LocId, Slot> = std::collections::HashMap::new();
        for (loc, kind) in effects {
            let slot = match touched.entry(*loc) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(self.slots.get(loc).ok_or(*loc)?.clone())
                }
            };
            kind.apply(&mut slot.value);
        }
        for (loc, slot) in touched {
            self.slots.insert(loc, slot);
        }
        Ok(())
    }

    /// Every allocated location with its class and current value, in
    /// location order — the iteration a store snapshot serializes.
    pub fn entries(&self) -> impl Iterator<Item = (LocId, &ClassId, &Value)> {
        self.slots
            .iter()
            .map(|(loc, slot)| (*loc, &slot.class, &slot.value))
    }

    /// The allocation counter: how many locations [`Store::alloc`] has
    /// issued. Persisted in snapshots so a restored store keeps
    /// allocating fresh, non-colliding ids.
    pub fn alloc_count(&self) -> u64 {
        self.next
    }

    /// Rebuilds a store from snapshot parts: the allocation counter and
    /// the full `(location, class, value)` listing, as produced by
    /// [`Store::alloc_count`] and [`Store::entries`].
    pub fn restore(next: u64, entries: impl IntoIterator<Item = (LocId, ClassId, Value)>) -> Store {
        let mut slots = PersistentMap::default();
        for (loc, class, value) in entries {
            slots.insert(loc, Slot { class, value });
        }
        Store { slots, next }
    }

    /// Extracts a plain location→value map (the [`MapState`] form used by
    /// training).
    pub fn to_map_state(&self) -> MapState {
        MapState(
            self.slots
                .iter()
                .map(|(loc, slot)| (*loc, slot.value.clone()))
                .collect(),
        )
    }
}

/// The slots a transaction snapshot is routed over: either one map (the
/// sequential executor, manual transactions, the simulator) or the
/// sharded runtime's per-shard maps, routed by [`LocId::shard`]. Cloning
/// is O(1) either way — one persistent-map root clone or one `Arc` bump.
#[derive(Debug, Clone)]
pub(crate) enum SnapshotSlots {
    Single(PersistentMap<LocId, Slot>),
    Sharded(Arc<[PersistentMap<LocId, Slot>]>),
}

impl SnapshotSlots {
    pub(crate) fn get(&self, loc: &LocId) -> Option<&Slot> {
        match self {
            SnapshotSlots::Single(m) => m.get(loc),
            SnapshotSlots::Sharded(maps) => maps[loc.shard(maps.len())].get(loc),
        }
    }
}

/// An O(1) snapshot of a store, usable as the entry state for conflict
/// detection (`t.SharedSnapshot` of Figure 7).
#[derive(Debug, Clone)]
pub struct SnapshotState(pub(crate) SnapshotSlots);

impl SnapshotState {
    /// A snapshot over the sharded store's per-shard maps.
    pub(crate) fn sharded(maps: Arc<[PersistentMap<LocId, Slot>]>) -> Self {
        SnapshotState(SnapshotSlots::Sharded(maps))
    }

    /// The snapshot's value for a location.
    pub fn value(&self, loc: LocId) -> Option<&Value> {
        self.0.get(&loc).map(|s| &s.value)
    }
}

impl EntryState for SnapshotState {
    fn value_of(&self, loc: LocId) -> Option<Value> {
        self.0.get(&loc).map(|s| s.value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_assigns_dense_ids() {
        let mut s = Store::new();
        let a = s.alloc("x", Value::int(1));
        let b = s.alloc("y", Value::int(2));
        assert_ne!(a, b);
        assert_eq!(s.value(a), Some(&Value::int(1)));
        assert_eq!(s.class(b).map(|c| c.label().to_string()), Some("y".into()));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn alloc_encodes_the_class_shard_hint() {
        let mut s = Store::new();
        let a = s.alloc("x", Value::int(1));
        let a2 = s.alloc("x", Value::int(2));
        let b = s.alloc("y", Value::int(3));
        assert_eq!(a.shard_hint(), ClassId::new("x").shard_hint());
        assert_eq!(b.shard_hint(), ClassId::new("y").shard_hint());
        // Same class, distinct allocations: same hint, distinct ids.
        assert_eq!(a.shard_hint(), a2.shard_hint());
        assert_ne!(a, a2);
        // For any shard count, class mates share a shard.
        for n in [1, 2, 8, 64] {
            assert_eq!(a.shard(n), a2.shard(n));
        }
    }

    #[test]
    fn snapshot_is_isolated() {
        let mut s = Store::new();
        let a = s.alloc("x", Value::int(1));
        let snap = SnapshotState(SnapshotSlots::Single(s.slots.clone()));
        // Mutate through a fresh slot insert.
        s.slots.insert(
            a,
            Slot {
                class: ClassId::new("x"),
                value: Value::int(9),
            },
        );
        assert_eq!(snap.value(a), Some(&Value::int(1)));
        assert_eq!(s.value(a), Some(&Value::int(9)));
        assert_eq!(snap.value_of(a), Some(Value::int(1)));
    }

    #[test]
    fn restore_roundtrips_entries_and_counter() {
        let mut s = Store::new();
        let a = s.alloc("x", Value::int(4));
        let b = s.alloc("y", Value::str("hi"));
        let entries: Vec<_> = s
            .entries()
            .map(|(l, c, v)| (l, c.clone(), v.clone()))
            .collect();
        assert_eq!(entries.len(), 2);
        let mut restored = Store::restore(s.alloc_count(), entries);
        assert_eq!(restored.value(a), Some(&Value::int(4)));
        assert_eq!(restored.value(b), Some(&Value::str("hi")));
        // The counter survives: a post-restore alloc gets a fresh id.
        let c = restored.alloc("x", Value::int(0));
        assert_ne!(c, a);
        assert_ne!(c, b);
        assert_eq!(restored.len(), 3);
    }

    #[test]
    fn apply_effects_replays_and_rejects_unknown_locs() {
        use janus_log::{OpKind, ScalarOp};
        let mut s = Store::new();
        let a = s.alloc("x", Value::int(10));
        s.apply_effects(&[
            (a, OpKind::Scalar(ScalarOp::Add(5))),
            (a, OpKind::Scalar(ScalarOp::Max(100))),
        ])
        .expect("allocated location");
        assert_eq!(s.value(a), Some(&Value::int(100)));
        let ghost = LocId(a.0 + (1 << SHARD_BITS));
        assert_eq!(
            s.apply_effects(&[(ghost, OpKind::Scalar(ScalarOp::Add(1)))]),
            Err(ghost)
        );
    }

    #[test]
    fn map_state_export() {
        let mut s = Store::new();
        let a = s.alloc("x", Value::int(4));
        let ms = s.to_map_state();
        assert_eq!(ms.0[&a], Value::int(4));
    }
}
