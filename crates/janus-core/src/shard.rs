//! The sharded store behind the per-shard commit path (DESIGN.md §9).
//!
//! `Shared.slots` is split into N class-hash-routed shards, each behind
//! its own read-write lock, so disjoint-footprint commits touch disjoint
//! shards and never contend. The global commit *order* survives as a
//! lightweight timestamp oracle — one fetch-add ticket counter — instead
//! of a lock held across apply: every commit draws one ticket while its
//! shard locks are held, every begin reads the counter before
//! snapshotting, and history reclamation prunes each shard independently
//! once the watermark (the minimum active begin ticket) passes an entry.
//!
//! Lock-ordering invariant: a committer write-locks exactly its touched
//! shards, always in ascending shard index; nothing else ever holds two
//! shard locks at once. GC-safety invariant: a transaction draws its
//! begin ticket, registers it (pinning the watermark), and only then
//! snapshots — so every history entry with a smaller ticket was
//! published under a shard write lock that completed before the
//! snapshot's read lock, is inside the snapshot, and is therefore
//! prunable without ever being needed again. Both invariants are
//! model-checked exhaustively in `tests/shard_model.rs`.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use janus_log::{CommittedLog, LocId};
use janus_persist::PersistentMap;
use parking_lot::{Mutex, RwLock};

use crate::store::Slot;

/// Default number of store shards. Small enough that per-begin shard
/// snapshots stay cheap, large enough that workloads with a handful of
/// hot classes spread out.
pub(crate) const DEFAULT_SHARDS: usize = 8;

/// One committed history entry in one shard: the shard's slice of a
/// transaction's log, stamped with the commit sequence ticket the oracle
/// assigned to the whole transaction.
pub(crate) struct SeqEntry {
    /// The owning transaction's global commit sequence number.
    pub seq: u64,
    /// The transaction's operations on this shard's locations,
    /// pre-decomposed once at commit.
    pub log: Arc<CommittedLog>,
}

/// One shard's lock-guarded state: its slice of the slots and the
/// committed history published into it.
pub(crate) struct ShardData {
    pub slots: PersistentMap<LocId, Slot>,
    /// Retained history entries. Seq-monotone: appends happen under the
    /// shard write lock, and the appender draws its ticket while holding
    /// that lock, so two appenders to one shard are fully ordered.
    pub history: VecDeque<SeqEntry>,
    /// Absolute position of `history[0]`: positions `0..start` were
    /// reclaimed. Windows are positional, not ticket-indexed, so pruned
    /// turns (and transactions that skipped this shard) leave no holes.
    pub start: u64,
}

impl ShardData {
    fn new(slots: PersistentMap<LocId, Slot>) -> Self {
        ShardData {
            slots,
            history: VecDeque::new(),
            start: 0,
        }
    }

    /// The absolute position one past the newest entry — the value a
    /// validator records and later compares to detect a moved history.
    pub fn head(&self) -> u64 {
        self.start + self.history.len() as u64
    }

    /// Appends `Arc` clones of every entry from absolute position `from`
    /// to the head (the shard's zero-copy window contribution).
    ///
    /// # Panics
    ///
    /// Panics if `from` has fallen below the pruned prefix — which the
    /// begin protocol (ticket, register, then snapshot) rules out for
    /// every registered transaction.
    pub fn collect_from(&self, from: u64, out: &mut Vec<Arc<CommittedLog>>) {
        let lo = from.checked_sub(self.start).unwrap_or_else(|| {
            panic!(
                "window position {from} is below the pruned prefix {}",
                self.start
            )
        });
        let lo = usize::try_from(lo).expect("window offset fits in usize");
        out.extend(self.history.iter().skip(lo).map(|e| Arc::clone(&e.log)));
    }

    /// Epoch reclamation: drops the history prefix whose tickets are
    /// strictly below `floor` (the watermark). Per-shard seq
    /// monotonicity makes that prefix exactly the reclaimable set.
    /// Returns the number of entries dropped.
    pub fn prune(&mut self, floor: u64) -> u64 {
        let mut dropped = 0u64;
        while self.history.front().is_some_and(|e| e.seq < floor) {
            self.history.pop_front();
            dropped += 1;
        }
        self.start += dropped;
        dropped
    }
}

/// One store shard: its data behind its own lock, plus its commit-path
/// statistics (updated outside the lock where possible).
pub(crate) struct Shard {
    pub data: RwLock<ShardData>,
    pub stats: ShardCounters,
}

/// Splits a store's slots into `shards` class-hash-routed maps. O(n log n),
/// once per run.
pub(crate) fn partition_slots(slots: &PersistentMap<LocId, Slot>, shards: usize) -> Vec<Shard> {
    let mut maps: Vec<PersistentMap<LocId, Slot>> = vec![PersistentMap::default(); shards];
    for (loc, slot) in slots.iter() {
        maps[loc.shard(shards)].insert(*loc, slot.clone());
    }
    maps.into_iter()
        .map(|m| Shard {
            data: RwLock::new(ShardData::new(m)),
            stats: ShardCounters::default(),
        })
        .collect()
}

/// Reassembles the final store slots from the shards at run exit.
pub(crate) fn merge_slots(shards: Vec<Shard>) -> (PersistentMap<LocId, Slot>, ShardReport) {
    let mut slots = PersistentMap::default();
    let mut report = ShardReport(Vec::with_capacity(shards.len()));
    for (i, shard) in shards.into_iter().enumerate() {
        let data = shard.data.into_inner();
        for (loc, slot) in data.slots.iter() {
            slots.insert(*loc, slot.clone());
        }
        report.0.push(shard.stats.snapshot(i, data.history.len()));
    }
    (slots, report)
}

/// Non-consuming variant of [`merge_slots`] for long-lived sessions:
/// reassembles a point-in-time view of the slots by read-locking one
/// shard at a time. A torn cut across shards is sound for the same
/// reason per-begin snapshots are: each location lives in exactly one
/// shard.
pub(crate) fn snapshot_slots(shards: &[Shard]) -> PersistentMap<LocId, Slot> {
    let mut slots = PersistentMap::default();
    for shard in shards {
        let g = shard.data.read();
        for (loc, slot) in g.slots.iter() {
            slots.insert(*loc, slot.clone());
        }
    }
    slots
}

/// Non-consuming variant of the [`merge_slots`] report for long-lived
/// sessions: snapshots every shard's counters and retained-history
/// length without tearing the shards down.
pub(crate) fn report(shards: &[Shard]) -> ShardReport {
    ShardReport(
        shards
            .iter()
            .enumerate()
            .map(|(i, s)| s.stats.snapshot(i, s.data.read().history.len()))
            .collect(),
    )
}

/// The commit-sequence oracle: a single fetch-add ticket counter that
/// replaces the global commit clock. The counter starts at 1 (matching
/// the seed protocol's clock), every commit — and every released ordered
/// turn — consumes exactly one ticket, and no lock is ever held on it.
pub(crate) struct Oracle {
    next: AtomicU64,
}

impl Oracle {
    pub fn new() -> Self {
        Oracle {
            next: AtomicU64::new(1),
        }
    }

    /// The next ticket to be issued — the begin timestamp. Acquire:
    /// pairs with the AcqRel ticket draw, so a begin observing
    /// `next == b` also observes every shard publish made by the commits
    /// that drew tickets below `b` (the GC-safety invariant).
    pub fn now(&self) -> u64 {
        self.next.load(Ordering::Acquire)
    }

    /// Draws one commit ticket. AcqRel: the release half publishes the
    /// drawer's shard appends to later begins (see [`Oracle::now`]); the
    /// acquire half orders consecutive drawers so per-shard history
    /// stays seq-monotone.
    pub fn ticket(&self) -> u64 {
        self.next.fetch_add(1, Ordering::AcqRel)
    }
}

/// The multiset of in-flight transactions' begin tickets, with the
/// minimum — the GC watermark — cached in one atomic so the per-commit
/// reclamation hot path never touches the mutex.
pub(crate) struct ActiveBegins {
    map: Mutex<BTreeMap<u64, usize>>,
    /// Cached minimum key; `u64::MAX` when no transaction is in flight
    /// (the pruner caps it at the oracle's `now`). Refreshed on every
    /// register/unregister under the mutex, read lock-free.
    watermark: AtomicU64,
}

impl Default for ActiveBegins {
    fn default() -> Self {
        ActiveBegins {
            map: Mutex::new(BTreeMap::new()),
            watermark: AtomicU64::new(u64::MAX),
        }
    }
}

impl ActiveBegins {
    pub fn register(&self, begin: u64) {
        let mut map = self.map.lock();
        *map.entry(begin).or_insert(0) += 1;
        self.publish(&map);
    }

    pub fn unregister(&self, begin: u64) {
        let mut map = self.map.lock();
        match map.get_mut(&begin) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                map.remove(&begin);
            }
            None => unreachable!("unregistering an unknown begin"),
        }
        self.publish(&map);
    }

    fn publish(&self, map: &BTreeMap<u64, usize>) {
        let min = map.keys().next().copied().unwrap_or(u64::MAX);
        // Release: pairs with the Acquire in `watermark()` so a pruner
        // that reads a raised watermark also sees the raiser's
        // unregister completed (the map and the cache agree).
        self.watermark.store(min, Ordering::Release);
    }

    /// The GC watermark: pruning tickets strictly below it is safe.
    /// Lock-free — this is the per-commit hot path.
    pub fn watermark(&self) -> u64 {
        self.watermark.load(Ordering::Acquire)
    }
}

/// Lock-free per-shard commit-path counters, updated by committers and
/// snapshotted into [`ShardReport`] at run exit.
#[derive(Default)]
pub(crate) struct ShardCounters {
    commits: AtomicU64,
    pruned: AtomicU64,
    /// Log2-bucketed write-lock acquisition wait, in nanoseconds
    /// (the contention signal: disjoint-shard workloads keep it flat).
    lock_wait_buckets: LockWaitBuckets,
    lock_wait_sum: AtomicU64,
    lock_wait_max: AtomicU64,
}

struct LockWaitBuckets([AtomicU64; 65]);

impl Default for LockWaitBuckets {
    fn default() -> Self {
        LockWaitBuckets(std::array::from_fn(|_| AtomicU64::new(0)))
    }
}

impl ShardCounters {
    /// Records one committed transaction touching this shard.
    /// Relaxed: statistics, read only after the run joins its workers.
    pub fn commit(&self) {
        self.commits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records entries reclaimed from this shard.
    pub fn reclaimed(&self, n: u64) {
        self.pruned.fetch_add(n, Ordering::Relaxed);
    }

    /// Entries reclaimed from this shard so far (sessions subtract a
    /// baseline to attribute reclamation to one batch).
    pub fn reclaimed_total(&self) -> u64 {
        self.pruned.load(Ordering::Relaxed)
    }

    /// Records one write-lock acquisition wait.
    pub fn lock_wait(&self, wait: Duration) {
        let ns = u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX);
        self.lock_wait_buckets.0[(64 - ns.leading_zeros()) as usize]
            .fetch_add(1, Ordering::Relaxed);
        self.lock_wait_sum.fetch_add(ns, Ordering::Relaxed);
        self.lock_wait_max.fetch_max(ns, Ordering::Relaxed);
    }

    fn snapshot(&self, shard: usize, history_len: usize) -> ShardStatsSnapshot {
        let buckets: [u64; 65] =
            std::array::from_fn(|i| self.lock_wait_buckets.0[i].load(Ordering::Relaxed));
        ShardStatsSnapshot {
            shard,
            commits: self.commits.load(Ordering::Relaxed),
            history_len: history_len as u64,
            pruned: self.pruned.load(Ordering::Relaxed),
            lock_wait_ns: janus_obs::Histogram::from_log2_buckets(
                buckets,
                self.lock_wait_sum.load(Ordering::Relaxed),
                self.lock_wait_max.load(Ordering::Relaxed),
            ),
        }
    }
}

/// One shard's commit-path statistics at run exit.
#[derive(Debug, Clone)]
pub struct ShardStatsSnapshot {
    /// The shard's index.
    pub shard: usize,
    /// Committed transactions that touched this shard.
    pub commits: u64,
    /// History entries still retained at run exit.
    pub history_len: u64,
    /// History entries reclaimed by epoch GC.
    pub pruned: u64,
    /// Write-lock acquisition wait per commit, in nanoseconds.
    pub lock_wait_ns: janus_obs::Histogram,
}

/// Per-shard statistics for a whole run, absorbable by the unified
/// metrics registry (one counter set per shard, `s<i>.<name>`).
#[derive(Debug, Clone, Default)]
pub struct ShardReport(pub Vec<ShardStatsSnapshot>);

impl ShardReport {
    /// Sum of entries reclaimed across all shards.
    pub fn total_reclaimed(&self) -> u64 {
        self.0.iter().map(|s| s.pruned).sum()
    }

    /// All shards' lock-wait samples merged into one histogram.
    pub fn lock_wait_ns(&self) -> janus_obs::Histogram {
        let mut h = janus_obs::Histogram::default();
        for s in &self.0 {
            h.merge(&s.lock_wait_ns);
        }
        h
    }
}

impl janus_obs::Snapshot for ShardReport {
    fn source(&self) -> &'static str {
        "shard"
    }

    fn counters(&self) -> Vec<(String, u64)> {
        let mut out = Vec::with_capacity(self.0.len() * 4);
        for s in &self.0 {
            out.push((format!("s{}.commits", s.shard), s.commits));
            out.push((format!("s{}.history_len", s.shard), s.history_len));
            out.push((format!("s{}.pruned", s.shard), s.pruned));
            out.push((
                format!("s{}.lock_wait_ns_sum", s.shard),
                s.lock_wait_ns.sum(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_log::{ClassId, Op, OpKind, ScalarOp};
    use janus_relational::Value;

    fn entry(seq: u64) -> SeqEntry {
        let mut v = Value::int(0);
        let op = Op::execute(
            LocId(seq),
            ClassId::new("t"),
            OpKind::Scalar(ScalarOp::Add(1)),
            &mut v,
        )
        .0;
        SeqEntry {
            seq,
            log: Arc::new(CommittedLog::new(vec![op])),
        }
    }

    #[test]
    fn positional_windows_survive_pruning() {
        let mut d = ShardData::new(PersistentMap::default());
        for seq in [3, 5, 9, 12] {
            d.history.push_back(entry(seq));
        }
        assert_eq!(d.head(), 4);
        let mut w = Vec::new();
        d.collect_from(1, &mut w);
        assert_eq!(w.len(), 3, "window [1, head)");
        assert_eq!(d.prune(9), 2, "tickets 3 and 5 fall below the floor");
        assert_eq!(d.start, 2);
        assert_eq!(d.head(), 4, "absolute head is pruning-invariant");
        let mut w = Vec::new();
        d.collect_from(2, &mut w);
        assert_eq!(w.len(), 2);
        // Prune is idempotent at the same floor.
        assert_eq!(d.prune(9), 0);
    }

    #[test]
    #[should_panic(expected = "below the pruned prefix")]
    fn window_below_the_pruned_prefix_panics() {
        let mut d = ShardData::new(PersistentMap::default());
        d.history.push_back(entry(1));
        d.prune(2);
        let mut w = Vec::new();
        d.collect_from(0, &mut w);
    }

    #[test]
    fn oracle_tickets_are_dense_from_one() {
        let o = Oracle::new();
        assert_eq!(o.now(), 1);
        assert_eq!(o.ticket(), 1);
        assert_eq!(o.ticket(), 2);
        assert_eq!(o.now(), 3);
    }

    #[test]
    fn watermark_tracks_the_minimum_active_begin() {
        let a = ActiveBegins::default();
        assert_eq!(a.watermark(), u64::MAX, "idle: capped by the caller");
        a.register(7);
        a.register(3);
        a.register(3);
        assert_eq!(a.watermark(), 3);
        a.unregister(3);
        assert_eq!(a.watermark(), 3, "multiset: one of two threes remains");
        a.unregister(3);
        assert_eq!(a.watermark(), 7);
        a.unregister(7);
        assert_eq!(a.watermark(), u64::MAX);
    }

    #[test]
    fn partition_routes_by_class_hash_and_merge_restores() {
        let mut slots = PersistentMap::default();
        let locs: Vec<LocId> = (0..20u64)
            .map(|i| {
                let class = ClassId::new(format!("c{}", i % 5));
                let loc = LocId((i << janus_log::SHARD_BITS) | class.shard_hint());
                slots.insert(
                    loc,
                    Slot {
                        class,
                        value: Value::int(i as i64),
                    },
                );
                loc
            })
            .collect();
        let shards = partition_slots(&slots, 4);
        assert_eq!(shards.len(), 4);
        for (i, shard) in shards.iter().enumerate() {
            let g = shard.data.read();
            for (loc, _) in g.slots.iter() {
                assert_eq!(loc.shard(4), i, "{loc} routed to shard {i}");
            }
        }
        let (merged, report) = merge_slots(shards);
        assert_eq!(merged.len(), slots.len());
        for loc in locs {
            assert_eq!(
                merged.get(&loc).map(|s| &s.value),
                slots.get(&loc).map(|s| &s.value)
            );
        }
        assert_eq!(report.0.len(), 4);
        assert_eq!(report.total_reclaimed(), 0);
    }

    #[test]
    fn shard_counters_snapshot_into_the_report() {
        let c = ShardCounters::default();
        c.commit();
        c.commit();
        c.reclaimed(3);
        c.lock_wait(Duration::from_nanos(100));
        c.lock_wait(Duration::from_nanos(1000));
        let snap = c.snapshot(2, 5);
        assert_eq!(snap.shard, 2);
        assert_eq!(snap.commits, 2);
        assert_eq!(snap.pruned, 3);
        assert_eq!(snap.history_len, 5);
        assert_eq!(snap.lock_wait_ns.count(), 2);
        assert_eq!(snap.lock_wait_ns.sum(), 1100);
        assert_eq!(snap.lock_wait_ns.max(), 1000);
        let report = ShardReport(vec![snap]);
        use janus_obs::Snapshot as _;
        let counters = report.counters();
        assert!(counters.contains(&("s2.commits".to_string(), 2)));
        assert!(counters.contains(&("s2.pruned".to_string(), 3)));
        assert_eq!(report.lock_wait_ns().count(), 2);
    }
}
