//! The JANUS parallelization protocol (§4, Figure 7).
//!
//! JANUS accepts (i) an initial configuration of the shared state
//! ([`Store`]), (ii) a list of [`Task`]s, and (iii) a specification
//! whether to commit the tasks in the order in which they were given. It
//! repeatedly tries to execute the tasks asynchronously, in parallel,
//! until the task pool is drained:
//!
//! * `CREATETRANSACTION` snapshots the shared state under a *read* lock —
//!   privatization is O(1) thanks to the persistent store — and records
//!   the transaction's begin time from the global `Clock`;
//! * the task body runs sequentially against its privatized copy through
//!   a [`TxView`], which logs every shared-state operation;
//! * at commit time, the operations committed since the transaction began
//!   (its *conflict history*) are fetched and checked against the
//!   transaction's log by a pluggable
//!   [`janus_detect::ConflictDetector`] — with no lock held;
//! * `COMMIT` takes the *write* lock, validates that the history has not
//!   evolved since detection, replays the logged operations onto the
//!   global state, and advances the clock.
//!
//! Theorem 4.1: with a sound and valid detector the protocol terminates
//! and is serializable — ordered runs end in the same final state as the
//! sequential execution; unordered runs end in the state of *some* serial
//! order (the commit order). The integration test-suite checks both.
//!
//! # Example
//!
//! ```
//! use janus_core::{Janus, Store, Task};
//! use janus_detect::SequenceDetector;
//! use janus_relational::Value;
//! use std::sync::Arc;
//!
//! let mut store = Store::new();
//! let work = store.alloc("work", Value::int(0));
//!
//! // Three tasks, each bumping and restoring the shared counter
//! // (the Figure 1 identity pattern).
//! let tasks: Vec<Task> = (1..=3)
//!     .map(|w| {
//!         Task::new(move |tx| {
//!             tx.add(work, w);
//!             tx.add(work, -w);
//!         })
//!     })
//!     .collect();
//!
//! let janus = Janus::new(Arc::new(SequenceDetector::new())).threads(2);
//! let outcome = janus.run(store, tasks);
//! assert_eq!(outcome.store.value(work), Some(&Value::int(0)));
//! assert_eq!(outcome.stats.commits, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
mod runtime;
mod shard;
mod store;
mod txview;

pub use exec::{Job, JobExecutor, SpawnExecutor};
pub use runtime::{
    BatchOutcome, CommitGate, CommitSink, Janus, Outcome, PanicPolicy, RunStats, Session, Task,
    TaskFailure,
};
pub use shard::{ShardReport, ShardStatsSnapshot};
pub use store::{SnapshotState, Store};
pub use txview::TxView;
