//! Where a run's worker jobs execute: the [`JobExecutor`] seam between
//! the batch runtime and its threads.
//!
//! [`Janus::run`](crate::Janus::run) historically spawned one fresh
//! thread per worker inside a `std::thread::scope` and tore them down at
//! run exit. The block-executor service (`janus-block`) reuses warm
//! threads across batches instead; this trait is the seam both share.
//! Jobs are `'static` closures over `Arc`-owned batch state, so an
//! executor may run them on threads that outlive the call.

/// One worker's whole contribution to a batch, boxed for dispatch.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Runs a batch's worker jobs to completion.
///
/// The contract `run_jobs` must uphold:
///
/// * every job runs exactly once, each on its own thread (jobs block on
///   each other — ordered turns, commit gates — so multiplexing two
///   jobs onto one thread can deadlock);
/// * the call returns only after every job has returned or unwound;
/// * if any job unwinds, the first captured payload is re-raised from
///   `run_jobs` after the remaining jobs finish (mirroring
///   `std::thread::scope`).
pub trait JobExecutor: Send + Sync {
    /// Runs every job concurrently and blocks until all are done.
    fn run_jobs(&self, jobs: Vec<Job>);
}

/// The default executor: one fresh `std::thread` per job, joined before
/// returning — the seed's spawn-per-run behavior behind the seam.
#[derive(Debug, Default, Clone, Copy)]
pub struct SpawnExecutor;

impl JobExecutor for SpawnExecutor {
    fn run_jobs(&self, jobs: Vec<Job>) {
        let handles: Vec<_> = jobs.into_iter().map(std::thread::spawn).collect();
        let mut payload: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            if let Err(p) = h.join() {
                payload.get_or_insert(p);
            }
        }
        if let Some(p) = payload {
            std::panic::resume_unwind(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn spawn_executor_runs_every_job_once() {
        let n = Arc::new(AtomicU64::new(0));
        let jobs: Vec<Job> = (0..8)
            .map(|_| {
                let n = Arc::clone(&n);
                Box::new(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                }) as Job
            })
            .collect();
        SpawnExecutor.run_jobs(jobs);
        assert_eq!(n.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn spawn_executor_reraises_the_first_panic_after_draining() {
        let n = Arc::new(AtomicU64::new(0));
        let mut jobs: Vec<Job> = Vec::new();
        jobs.push(Box::new(|| panic!("job boom")));
        for _ in 0..3 {
            let n = Arc::clone(&n);
            jobs.push(Box::new(move || {
                n.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            SpawnExecutor.run_jobs(jobs)
        }))
        .expect_err("panic re-raised");
        assert_eq!(err.downcast_ref::<&str>(), Some(&"job boom"));
        assert_eq!(n.load(Ordering::Relaxed), 3, "other jobs still ran");
    }
}
