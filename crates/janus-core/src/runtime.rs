//! The parallel runtime: `DOPARALLEL` / `RUNTASK` / `CREATETRANSACTION` /
//! `COMMIT` of Figure 7.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use janus_detect::ConflictDetector;
use janus_fault::{FaultKind, FaultPlan};
use janus_log::{ClassId, CommittedLog, Fingerprint, HistoryWindow, Op, SHARD_SPACE};
use janus_obs::{AbortReason, EventKind, Recorder, RingHandle};
use janus_sched::{
    backoff, DegradeConfig, DegradeController, Fifo, Parker, SchedStats, SchedulePolicy, TaskSource,
};
use janus_train::{train, CommutativityCache, TrainConfig, TrainReport, TrainingRun};

use crate::exec::{Job, JobExecutor, SpawnExecutor};
use crate::shard::{
    merge_slots, partition_slots, report, snapshot_slots, ActiveBegins, Oracle, SeqEntry, Shard,
    ShardReport, DEFAULT_SHARDS,
};
use crate::store::{SnapshotState, Store};
use crate::txview::TxView;

/// What the runtime does with a panic escaping a task body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PanicPolicy {
    /// Fail-stop (the default, the seed behavior): the run is poisoned,
    /// other workers stop picking up work, ordered waiters bail out, and
    /// the first panic payload is re-raised from [`Janus::run`].
    #[default]
    Poison,
    /// Fault isolation: the panicking task's transaction is discarded,
    /// the task is recorded in [`Outcome::failed`] (payload message and
    /// attempt count), and the remaining tasks run to completion. In
    /// ordered runs the failed task's commit turn is released with a
    /// tombstone so successors never hang.
    Isolate,
}

/// One task isolated after a body panic under [`PanicPolicy::Isolate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskFailure {
    /// The failed task's 1-based id.
    pub task: u64,
    /// The panic payload, rendered to a string when possible.
    pub message: String,
    /// Attempts the task made, including the failing one.
    pub attempts: u32,
}

/// Renders a panic payload for [`TaskFailure::message`].
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Worker-phase encoding for the watchdog's diagnostic dump: each worker
/// publishes `phase | task << 3` into one relaxed atomic, so the dump
/// can name what every worker was doing when progress stopped.
mod phase {
    pub const IDLE: u64 = 0;
    pub const RUNNING: u64 = 1;
    pub const ORDERED_WAIT: u64 = 2;
    pub const VALIDATING: u64 = 3;
    pub const COMMITTING: u64 = 4;
    pub const BACKOFF: u64 = 5;
    pub const SERIAL_WAIT: u64 = 6;
    pub const DONE: u64 = 7;

    pub fn label(p: u64) -> &'static str {
        match p {
            IDLE => "idle",
            RUNNING => "running",
            ORDERED_WAIT => "ordered-wait",
            VALIDATING => "validating",
            COMMITTING => "committing",
            BACKOFF => "backoff",
            SERIAL_WAIT => "serial-wait",
            DONE => "done",
            _ => "unknown",
        }
    }

    /// Phases in which the worker is parked waiting for someone else.
    pub fn is_parked(p: u64) -> bool {
        matches!(p, ORDERED_WAIT | BACKOFF | SERIAL_WAIT)
    }
}

/// One published phase word per worker (see [`phase`]).
struct WorkerPhases(Vec<AtomicU64>);

impl WorkerPhases {
    fn new(workers: usize) -> Self {
        WorkerPhases((0..workers).map(|_| AtomicU64::new(phase::IDLE)).collect())
    }

    fn set(&self, worker: usize, phase: u64, task: u64) {
        self.0[worker].store(phase | (task << 3), Ordering::Relaxed);
    }

    fn get(&self, worker: usize) -> (u64, u64) {
        let v = self.0[worker].load(Ordering::Relaxed);
        (v & 7, v >> 3)
    }
}

/// Decrements the live-worker count when its worker exits — by return,
/// break, or unwind — so the watchdog can never wait on a dead worker.
struct LiveGuard<'a>(&'a AtomicU64);

impl Drop for LiveGuard<'_> {
    fn drop(&mut self) {
        // AcqRel: the release half publishes everything the exiting
        // worker did (its final phase word, counter updates) to the
        // watchdog's Acquire load of the live count.
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A cross-batch commit barrier, consulted by committers right before
/// they take the shard locks. `janus-block` implements it over
/// footprint fingerprints so batch N+1 commits freely once its
/// transaction is provably disjoint from everything batch N ran, and
/// waits only when the footprints may intersect.
///
/// All three methods are called concurrently from worker threads. A
/// gate must be monotone: once `may_commit` returns `true` for a
/// fingerprint it must keep returning `true` (committers poll it).
pub trait CommitGate: Send + Sync {
    /// Records one executed attempt of task `tid` and the fingerprint
    /// of the log it produced (called once per attempt, before
    /// validation — retries can only widen the recorded footprint).
    fn note_executed(&self, tid: u64, fingerprint: &Fingerprint);

    /// Records that task `tid` will never produce a committed log
    /// (isolated after a body panic).
    fn note_failed(&self, tid: u64);

    /// May a validated transaction with this fingerprint commit now?
    fn may_commit(&self, tid: u64, fingerprint: &Fingerprint) -> bool;
}

/// An observer of every commit ticket the session oracle issues — the
/// seam the durable commit journal (`janus-wal`) hangs off.
///
/// [`CommitSink::committed`] is invoked inside the commit critical
/// section, with every touched shard's write lock still held,
/// immediately after the ticket draw and the shard publishes. That
/// placement is the durability contract: every ticket the oracle ever
/// issues reaches the sink exactly once — as a commit, or (for a failed
/// ordered task's released turn) as a skip — so a sink can reconstruct
/// the dense commit sequence. Commits touching disjoint shards run
/// concurrently, so *calls arrive out of ticket order*; an ordering
/// sink must reorder internally (the WAL buffers by ticket and drains
/// the contiguous prefix).
///
/// Implementations must be fast and must never take a shard lock —
/// they run under all of the committer's shard locks, and anything
/// heavier than an append-to-buffer lengthens every conflicting
/// commit's critical section.
pub trait CommitSink: Send + Sync {
    /// One committed transaction: its commit ticket, the bitmask of
    /// store shards it touched, and its full operation log (reads
    /// included; sinks that persist effects filter on
    /// [`Op::is_write`]).
    fn committed(&self, seq: u64, shard_mask: u64, ops: &[Op]);

    /// One consumed-but-unpublished ticket: a failed ordered task's
    /// commit turn, released with a tombstone.
    fn skipped(&self, seq: u64);
}

/// The state that outlives one batch: the commit-sequence oracle, the
/// in-flight begin multiset (the GC watermark), and the sharded store.
/// Everything per-batch lives in `BatchCtx` instead.
struct SessionCore {
    /// The commit-sequence oracle: one fetch-add ticket counter,
    /// monotone across every batch of the session.
    oracle: Oracle,
    /// In-flight begin tickets across *all* concurrent batches — the
    /// epoch watermark that fences cross-batch history reclamation.
    active: ActiveBegins,
    /// The class-hash-routed store shards, each behind its own lock.
    shards: Vec<Shard>,
}

impl SessionCore {
    fn total_reclaimed(&self) -> u64 {
        self.shards.iter().map(|s| s.stats.reclaimed_total()).sum()
    }
}

/// A long-lived execution session over one store: batches submitted
/// through [`Janus::run_batch`] share the session's oracle, watermark
/// and shards, so a later batch validates against — and is reclaimed
/// with — everything earlier batches committed. Created by
/// [`Janus::open_session`]; [`Janus::run`] is the one-batch special
/// case.
pub struct Session {
    core: Arc<SessionCore>,
    /// The store the session was opened over, minus its slots (which
    /// live in the shards until [`Session::finish`]).
    base: Store,
    /// The next unassigned global task id (1-based, dense across
    /// batches so fault-plan subjects and ordered turns stay unique).
    next_tid: AtomicU64,
}

impl Session {
    /// A point-in-time copy of the store, without closing the session
    /// (read-locks one shard at a time; concurrent batches keep
    /// committing).
    pub fn store(&self) -> Store {
        let mut store = self.base.clone();
        store.slots = snapshot_slots(&self.core.shards);
        store
    }

    /// Per-shard commit-path statistics since the session opened.
    pub fn shard_report(&self) -> ShardReport {
        report(&self.core.shards)
    }

    /// Commit tickets issued so far (commits + tombstones across all
    /// batches).
    pub fn commit_seq(&self) -> u64 {
        self.core.oracle.now() - 1
    }

    /// Reserves `n` dense global task ids, returning the first.
    pub fn reserve_tids(&self, n: u64) -> u64 {
        self.next_tid.fetch_add(n, Ordering::Relaxed)
    }

    /// Closes the session: tears the shards down into the final store
    /// and the cumulative shard report.
    ///
    /// # Panics
    ///
    /// Panics if a batch is still running on the session.
    pub fn finish(self) -> (Store, ShardReport) {
        let core = Arc::try_unwrap(self.core)
            .ok()
            .expect("no batch may be running when a session finishes");
        let (slots, shard_stats) = merge_slots(core.shards);
        let mut store = self.base;
        store.slots = slots;
        (store, shard_stats)
    }
}

/// One batch's shared state, bundled so every worker, the watchdog, and
/// each attempt see the same view without Figure 7's parameter list
/// growing past readability. `Arc`-owned so worker jobs are `'static`
/// and can run on pooled threads that outlive the batch call.
struct BatchCtx {
    core: Arc<SessionCore>,
    tasks: Vec<Task>,
    /// Global id of `tasks[0]`; task `i` runs as `first_tid + i`.
    first_tid: u64,
    /// The ordered-mode commit turn (global task id whose commit is
    /// next, starting at `first_tid`). Untouched in unordered batches.
    turn: AtomicU64,
    counters: RunCounters,
    source: Box<dyn TaskSource>,
    controller: Option<DegradeController>,
    /// Batch-scoped: a poisoned batch stops its own workers and waiters
    /// without touching sibling batches on the same session.
    poisoned: AtomicBool,
    phases: WorkerPhases,
    failed: parking_lot::Mutex<Vec<TaskFailure>>,
    /// Escalated retries without a degradation controller serialize on
    /// this batch-level token instead.
    escalation: parking_lot::Mutex<()>,
    panic_payload: parking_lot::Mutex<Option<Box<dyn std::any::Any + Send>>>,
    dumps: parking_lot::Mutex<Vec<String>>,
    /// Workers still running (the watchdog's exit condition).
    live: AtomicU64,
    /// The cross-batch commit barrier, when this batch runs inside a
    /// block pipeline.
    gate: Option<Arc<dyn CommitGate>>,
}

impl BatchCtx {
    fn oracle(&self) -> &Oracle {
        &self.core.oracle
    }

    fn active(&self) -> &ActiveBegins {
        &self.core.active
    }

    fn shards(&self) -> &[Shard] {
        &self.core.shards
    }
}

/// The result of one batch on a session: statistics only — the store
/// stays in the session until [`Session::finish`].
#[derive(Debug)]
pub struct BatchOutcome {
    /// Execution statistics of this batch.
    pub stats: RunStats,
    /// Scheduling statistics of this batch.
    pub sched: SchedStats,
    /// Tasks isolated after a body panic under [`PanicPolicy::Isolate`],
    /// sorted by global task id.
    pub failed: Vec<TaskFailure>,
    /// Diagnostic dumps emitted by the commit-clock watchdog, in order.
    pub watchdog_dumps: Vec<String>,
    /// Global id of the batch's first task.
    pub first_tid: u64,
    /// Whether the batch was poisoned without an unwinding payload
    /// (a watchdog fire under [`PanicPolicy::Isolate`]): some tasks may
    /// not have run. Always `false` when the batch drained normally.
    pub poisoned: bool,
    /// Ordered-mode commit turns released with a tombstone (failed
    /// tasks). `commits + tombstones` tickets were drawn by this batch.
    pub tombstones: u64,
}

/// One unit of work: a program plus its initial data values (`o ↦ ν`),
/// captured in a closure that runs against a [`TxView`].
#[derive(Clone)]
pub struct Task {
    body: Arc<dyn Fn(&mut TxView) + Send + Sync>,
}

impl Task {
    /// Wraps a closure as a task.
    pub fn new(body: impl Fn(&mut TxView) + Send + Sync + 'static) -> Self {
        Task {
            body: Arc::new(body),
        }
    }

    /// Runs the task body against a view.
    pub fn run(&self, tx: &mut TxView) {
        (self.body)(tx)
    }
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Task")
    }
}

/// Execution statistics of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Number of tasks (= committed transactions).
    pub commits: u64,
    /// Number of aborted transaction attempts (`RUNTASK` returning
    /// `false`). The retries-to-transactions ratio of Figure 10 is
    /// `retries / commits`.
    pub retries: u64,
    /// Wall-clock duration of the parallel region.
    pub wall: Duration,
    /// Commit-log entries reclaimed by history GC.
    pub history_reclaimed: u64,
    /// Operations handed to per-cell conflict checks during this run —
    /// the cost driver incremental validation exists to bound.
    pub detect_ops_scanned: u64,
    /// Validation attempts that, after the commit clock advanced
    /// mid-validation, re-detected only the delta window instead of the
    /// full window.
    pub delta_revalidations: u64,
    /// History segments dismissed by the footprint-fingerprint prefilter
    /// without decomposition-index inspection (disjoint in O(1)).
    pub fastpath_segments_skipped: u64,
    /// History segments whose fingerprints overlapped the transaction's
    /// and that therefore went through full per-location inspection.
    pub fastpath_segments_scanned: u64,
    /// History windows served zero-copy (shared pre-decomposed segments;
    /// no operation cloned, no log re-decomposed).
    pub zero_copy_windows: u64,
    /// Faults injected by the attached [`FaultPlan`] during this run
    /// (zero with no plan attached).
    pub faults_injected: u64,
    /// Tasks isolated after a body panic ([`PanicPolicy::Isolate`]).
    pub tasks_failed: u64,
    /// Tasks whose conflict-abort count crossed the retry budget and
    /// whose further retries were serialized on the escalation token.
    pub retry_budget_escalations: u64,
    /// Times the commit-clock watchdog observed no progress for a full
    /// interval and emitted a diagnostic dump.
    pub watchdog_fires: u64,
    /// Validated transactions that had to park at the cross-batch
    /// commit gate (footprint overlapped the predecessor batch) before
    /// committing. Zero outside block pipelines.
    pub commit_gate_waits: u64,
}

impl RunStats {
    /// The retries-to-transactions ratio (Figure 10's metric).
    pub fn retry_ratio(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.retries as f64 / self.commits as f64
        }
    }
}

impl janus_obs::Snapshot for RunStats {
    fn source(&self) -> &'static str {
        "run"
    }

    fn counters(&self) -> Vec<(String, u64)> {
        vec![
            ("commits".to_string(), self.commits),
            ("retries".to_string(), self.retries),
            (
                "wall_ns".to_string(),
                u64::try_from(self.wall.as_nanos()).unwrap_or(u64::MAX),
            ),
            ("history_reclaimed".to_string(), self.history_reclaimed),
            ("detect_ops_scanned".to_string(), self.detect_ops_scanned),
            ("delta_revalidations".to_string(), self.delta_revalidations),
            (
                "fastpath_segments_skipped".to_string(),
                self.fastpath_segments_skipped,
            ),
            (
                "fastpath_segments_scanned".to_string(),
                self.fastpath_segments_scanned,
            ),
            ("zero_copy_windows".to_string(), self.zero_copy_windows),
            ("faults_injected".to_string(), self.faults_injected),
            ("tasks_failed".to_string(), self.tasks_failed),
            (
                "retry_budget_escalations".to_string(),
                self.retry_budget_escalations,
            ),
            ("watchdog_fires".to_string(), self.watchdog_fires),
            ("commit_gate_waits".to_string(), self.commit_gate_waits),
        ]
    }
}

/// The result of a parallel run: the final shared state and statistics.
#[derive(Debug)]
pub struct Outcome {
    /// The shared state after all tasks committed.
    pub store: Store,
    /// Run statistics.
    pub stats: RunStats,
    /// Scheduling statistics (dispatch, backoff, affinity, degradation).
    pub sched: SchedStats,
    /// Tasks isolated after a body panic under [`PanicPolicy::Isolate`],
    /// sorted by task id. Empty under [`PanicPolicy::Poison`] (the panic
    /// propagates instead) and in fault-free runs.
    pub failed: Vec<TaskFailure>,
    /// Diagnostic dumps emitted by the commit-clock watchdog, in order.
    pub watchdog_dumps: Vec<String>,
    /// Per-shard commit-path statistics: commits, write-lock wait,
    /// history retention and reclamation, one entry per store shard.
    pub shard_stats: ShardReport,
}

/// Monotone counters shared by the worker threads of one run.
#[derive(Default)]
struct RunCounters {
    /// Committed transactions, counted at each `COMMIT` — the commit
    /// clock mirrors it, but statistics must not be derived from clock
    /// arithmetic (poisoned runs stop the clock mid-flight).
    commits: AtomicU64,
    retries: AtomicU64,
    delta_revalidations: AtomicU64,
    zero_copy_windows: AtomicU64,
    tasks_failed: AtomicU64,
    escalations: AtomicU64,
    watchdog_fires: AtomicU64,
    gate_waits: AtomicU64,
    /// Commit turns of failed ordered tasks, released by consuming one
    /// oracle ticket without publishing any history entry. The oracle
    /// mirrors `commits + tombstones`.
    tombstones: AtomicU64,
}

/// The JANUS runtime: a conflict detector plus execution policy. Mirrors
/// the `run`, `runInOrder` and `runOutOfOrder` entry points of the
/// prototype's Java API via the [`Janus::ordered`] switch.
///
/// Cheap to clone: configuration is a handful of `Arc`s and scalars, so
/// batch worker jobs can each carry their own copy onto pooled threads.
#[derive(Clone)]
pub struct Janus {
    detector: Arc<dyn ConflictDetector>,
    threads: usize,
    shards: usize,
    ordered: bool,
    eager_privatization: bool,
    gc_history: bool,
    recorder: Option<Arc<Recorder>>,
    schedule: Arc<dyn SchedulePolicy>,
    degrade: Option<DegradeConfig>,
    panic_policy: PanicPolicy,
    max_attempts: Option<u32>,
    watchdog: Option<Duration>,
    faults: Option<Arc<FaultPlan>>,
    commit_sink: Option<Arc<dyn CommitSink>>,
}

impl Janus {
    /// Creates a runtime over a conflict detector, with unordered commits
    /// and one thread per available core.
    pub fn new(detector: Arc<dyn ConflictDetector>) -> Self {
        Janus {
            detector,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            shards: DEFAULT_SHARDS,
            ordered: false,
            eager_privatization: false,
            gc_history: true,
            recorder: None,
            schedule: Arc::new(Fifo),
            degrade: None,
            panic_policy: PanicPolicy::default(),
            max_attempts: None,
            watchdog: None,
            faults: None,
            commit_sink: None,
        }
    }

    /// Sets the panic policy: [`PanicPolicy::Poison`] (the default)
    /// fails the whole run on a task-body panic; [`PanicPolicy::Isolate`]
    /// discards only the panicking task's transaction and records it in
    /// [`Outcome::failed`].
    pub fn panic_policy(mut self, policy: PanicPolicy) -> Self {
        self.panic_policy = policy;
        self
    }

    /// Sets the per-task retry budget: after `budget` conflict aborts, a
    /// task's further retries take the serial token unconditionally
    /// (through the degradation controller when one is configured, else
    /// a run-level token), so it can no longer be starved by the
    /// contenders that aborted it. Ignored in ordered runs, which have
    /// an inherent progress guarantee: the task at the clock's turn
    /// validates against a window that drains. Default: unbounded.
    pub fn max_attempts(mut self, budget: u32) -> Self {
        assert!(budget >= 1, "the retry budget must allow one attempt");
        self.max_attempts = Some(budget);
        self
    }

    /// Arms the commit-clock watchdog: when neither the clock nor any
    /// progress counter moves for `interval`, the watchdog emits a
    /// diagnostic dump (per-worker phase, hot classes, parked waiters)
    /// to stderr and [`Outcome::watchdog_dumps`], then escalates per
    /// the panic policy — the run is treated as hung and poisoned
    /// (under [`PanicPolicy::Poison`] the payload propagates from
    /// [`Janus::run`]). Default: disarmed.
    pub fn watchdog(mut self, interval: Duration) -> Self {
        assert!(
            !interval.is_zero(),
            "the watchdog interval must be positive"
        );
        self.watchdog = Some(interval);
        self
    }

    /// Attaches a deterministic fault-injection plan: task-body panics,
    /// forced validation conflicts and commit-stall delays are injected
    /// at the plan's sites. With no plan attached (the default), every
    /// injection site is a single branch on `None`.
    pub fn faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Attaches a commit sink: every commit ticket the session oracle
    /// issues is reported to the sink from inside the commit critical
    /// section (see [`CommitSink`] for the ordering contract). With no
    /// sink attached (the default), the commit path pays a single
    /// branch on `None`.
    pub fn commit_sink(mut self, sink: Arc<dyn CommitSink>) -> Self {
        self.commit_sink = Some(sink);
        self
    }

    /// Sets the scheduling policy. The default, [`janus_sched::Fifo`],
    /// preserves the original dispatch bit for bit: one shared atomic
    /// counter, immediate retry on abort. [`janus_sched::Backoff`] and
    /// [`janus_sched::Affinity`] trade a little latency for far fewer
    /// retries under contention.
    pub fn schedule(mut self, policy: Arc<dyn SchedulePolicy>) -> Self {
        self.schedule = policy;
        self
    }

    /// Enables serial-fallback degradation: when the windowed retry
    /// ratio crosses `config.threshold`, retries of tasks that touched
    /// the hot location classes serialize on a token until the window
    /// cools. Ignored in ordered runs — a serialized retry waiting for
    /// its commit turn while holding the token would deadlock a
    /// predecessor's serialized retry.
    pub fn degrade(mut self, config: DegradeConfig) -> Self {
        self.degrade = Some(config);
        self
    }

    /// Attaches a lifecycle-trace recorder: every worker thread registers
    /// an event ring and records `begin`/`validate_open`/
    /// `delta_revalidate`/`per_cell_check`/`abort`/`commit`/`gc_reclaim`
    /// events through it. With no recorder attached (the default), every
    /// instrumentation site is a single branch on `None` — no event is
    /// constructed and nothing is allocated.
    pub fn recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Enables or disables commit-log garbage collection. On (the
    /// default), the logs of transactions older than every in-flight
    /// transaction's begin time are reclaimed at commit; off reproduces
    /// the paper prototype's keep-everything behavior.
    pub fn gc_history(mut self, gc: bool) -> Self {
        self.gc_history = gc;
        self
    }

    /// Privatizes by deep-copying the whole store at transaction begin,
    /// instead of the O(1) persistent snapshot — the naïve privatization
    /// the paper's prototype used, kept as ablation D4.
    pub fn eager_privatization(mut self, eager: bool) -> Self {
        self.eager_privatization = eager;
        self
    }

    /// Sets the number of worker threads.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "at least one worker thread");
        self.threads = threads;
        self
    }

    /// Sets the number of store shards (default 8, max
    /// [`janus_log::SHARD_SPACE`]). Locations are routed to shards by
    /// their class hash; commits lock only the shards they touch, so
    /// disjoint-class workloads commit without contending. One shard
    /// reproduces the seed's single-lock store.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(
            shards >= 1 && shards as u64 <= SHARD_SPACE,
            "shard count must be in 1..={SHARD_SPACE}"
        );
        self.shards = shards;
        self
    }

    /// Commits tasks in submission order (`runInOrder`): task `i` may
    /// commit only after tasks `1..i` have committed.
    pub fn ordered(mut self, ordered: bool) -> Self {
        self.ordered = ordered;
        self
    }

    /// The detector in use.
    pub fn detector(&self) -> &Arc<dyn ConflictDetector> {
        &self.detector
    }

    /// The configured worker-thread count. A batch dispatches this many
    /// worker jobs (plus one watchdog job when armed), which is what an
    /// external [`JobExecutor`](crate::JobExecutor) must accommodate.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Whether commits are ordered (`runInOrder`).
    pub fn is_ordered(&self) -> bool {
        self.ordered
    }

    /// `DOPARALLEL`: runs every task to successful commit and returns the
    /// final state.
    ///
    /// # Panics
    ///
    /// Under [`PanicPolicy::Poison`] (the default), a task-body panic
    /// poisons the run: other workers stop picking up work (and ordered
    /// waiters bail out instead of spinning forever), and the first
    /// panic payload is propagated from `run`. Committed transactions
    /// keep their effects; the panicking transaction's privatized
    /// effects are discarded, as for any abort.
    ///
    /// Under [`PanicPolicy::Isolate`], only the panicking task is lost:
    /// its transaction is discarded, the task lands in
    /// [`Outcome::failed`], and `run` returns normally. An armed
    /// watchdog ([`Janus::watchdog`]) that declares the run hung still
    /// panics under `Poison`.
    pub fn run(&self, store: Store, tasks: Vec<Task>) -> Outcome {
        let session = self.open_session(store);
        let batch = self.run_batch(&session, tasks, &SpawnExecutor, None);
        // Commits come from the dedicated counter; the oracle mirrors
        // commits + tombstones (released turns of failed ordered tasks)
        // but is an implementation detail of sequencing, not a
        // statistic. Poisoned runs stop drawing tickets mid-flight, so
        // the identity only holds for runs that drained normally.
        if !batch.poisoned {
            debug_assert_eq!(batch.stats.commits + batch.tombstones, session.commit_seq());
        }
        let (final_store, shard_stats) = session.finish();
        Outcome {
            store: final_store,
            sched: batch.sched,
            failed: batch.failed,
            watchdog_dumps: batch.watchdog_dumps,
            stats: batch.stats,
            shard_stats,
        }
    }

    /// Opens a long-lived [`Session`] over a store: the oracle, the GC
    /// watermark and the sharded slots persist across every
    /// [`Janus::run_batch`] submitted to it, so later batches validate
    /// against earlier batches' commits.
    pub fn open_session(&self, store: Store) -> Session {
        let shards = partition_slots(&store.slots, self.shards);
        let mut base = store;
        base.slots = Default::default();
        Session {
            core: Arc::new(SessionCore {
                oracle: Oracle::new(),
                active: ActiveBegins::default(),
                shards,
            }),
            base,
            next_tid: AtomicU64::new(1),
        }
    }

    /// Runs one batch of tasks on a session, dispatching its worker
    /// jobs through `executor` (fresh threads for [`SpawnExecutor`], a
    /// warm pool for `janus-block`) and consulting `gate` — when given —
    /// before every commit.
    ///
    /// Batches on one session may run concurrently: the block pipeline
    /// overlaps batch N+1's speculative execution with batch N's
    /// validation and commit, and the shared oracle/watermark keep
    /// cross-batch snapshots and GC sound. Poisoning is batch-scoped: a
    /// panic under [`PanicPolicy::Poison`] propagates from this call
    /// without stopping sibling batches.
    pub fn run_batch(
        &self,
        session: &Session,
        tasks: Vec<Task>,
        executor: &dyn JobExecutor,
        gate: Option<Arc<dyn CommitGate>>,
    ) -> BatchOutcome {
        let started = Instant::now();
        let first_tid = session.reserve_tids(tasks.len() as u64);
        let ops_scanned_at_start = self.detector.stats().ops_scanned();
        let segments_skipped_at_start = self.detector.stats().segments_skipped();
        let segments_scanned_at_start = self.detector.stats().segments_scanned();
        let faults_at_start = self.faults.as_ref().map_or(0, |f| f.stats().injected());
        let reclaimed_at_start = session.core.total_reclaimed();
        let workers = self.threads.min(tasks.len().max(1));
        let ctx = Arc::new(BatchCtx {
            core: Arc::clone(&session.core),
            first_tid,
            turn: AtomicU64::new(first_tid),
            counters: RunCounters::default(),
            // One dispatch state per batch: the policy is reusable
            // config, the source is this batch's shared queue state.
            source: self.schedule.bind(tasks.len(), workers),
            // Degradation is unordered-only: a serialized retry waiting
            // for its commit turn while holding the token would deadlock
            // any predecessor whose own retry needs the token.
            controller: if self.ordered {
                None
            } else {
                self.degrade.clone().map(DegradeController::new)
            },
            poisoned: AtomicBool::new(false),
            phases: WorkerPhases::new(workers),
            failed: parking_lot::Mutex::new(Vec::new()),
            escalation: parking_lot::Mutex::new(()),
            panic_payload: parking_lot::Mutex::new(None),
            dumps: parking_lot::Mutex::new(Vec::new()),
            live: AtomicU64::new(workers as u64),
            gate,
            tasks,
        });
        let cfg = Arc::new(self.clone());
        let mut jobs: Vec<Job> = Vec::with_capacity(workers + 1);
        for w in 0..workers {
            let (cfg, ctx) = (Arc::clone(&cfg), Arc::clone(&ctx));
            jobs.push(Box::new(move || cfg.worker_loop(w, &ctx)));
        }
        if let Some(interval) = self.watchdog {
            let (cfg, ctx) = (Arc::clone(&cfg), Arc::clone(&ctx));
            jobs.push(Box::new(move || cfg.watchdog_loop(interval, &ctx)));
        }
        executor.run_jobs(jobs);

        if let Some(payload) = ctx.panic_payload.lock().take() {
            std::panic::resume_unwind(payload);
        }
        let counters = &ctx.counters;
        let commits = counters.commits.load(Ordering::Relaxed);
        let mut sched = ctx.source.stats();
        if let Some(c) = &ctx.controller {
            c.merge_into(&mut sched);
        }
        let mut failed = std::mem::take(&mut *ctx.failed.lock());
        failed.sort_by_key(|f| f.task);
        let watchdog_dumps = std::mem::take(&mut *ctx.dumps.lock());
        BatchOutcome {
            sched,
            failed,
            watchdog_dumps,
            first_tid,
            poisoned: ctx.poisoned.load(Ordering::Acquire),
            tombstones: counters.tombstones.load(Ordering::Relaxed),
            stats: RunStats {
                commits,
                retries: counters.retries.load(Ordering::Relaxed),
                wall: started.elapsed(),
                history_reclaimed: session
                    .core
                    .total_reclaimed()
                    .saturating_sub(reclaimed_at_start),
                detect_ops_scanned: self
                    .detector
                    .stats()
                    .ops_scanned()
                    .saturating_sub(ops_scanned_at_start),
                delta_revalidations: counters.delta_revalidations.load(Ordering::Relaxed),
                fastpath_segments_skipped: self
                    .detector
                    .stats()
                    .segments_skipped()
                    .saturating_sub(segments_skipped_at_start),
                fastpath_segments_scanned: self
                    .detector
                    .stats()
                    .segments_scanned()
                    .saturating_sub(segments_scanned_at_start),
                zero_copy_windows: counters.zero_copy_windows.load(Ordering::Relaxed),
                faults_injected: self
                    .faults
                    .as_ref()
                    .map_or(0, |f| f.stats().injected().saturating_sub(faults_at_start)),
                tasks_failed: counters.tasks_failed.load(Ordering::Relaxed),
                retry_budget_escalations: counters.escalations.load(Ordering::Relaxed),
                watchdog_fires: counters.watchdog_fires.load(Ordering::Relaxed),
                commit_gate_waits: counters.gate_waits.load(Ordering::Relaxed),
            },
        }
    }

    /// One worker's batch loop: pull a task index from the source, run
    /// it to commit (or isolation), bail out when the batch is
    /// poisoned. Under [`PanicPolicy::Poison`] the first escaping
    /// payload is parked in the batch context and re-raised from
    /// [`Janus::run_batch`].
    fn worker_loop(&self, w: usize, ctx: &BatchCtx) {
        // The decrement rides a drop guard so the watchdog can never
        // wait on a worker that already unwound.
        let _live = LiveGuard(&ctx.live);
        // One event ring per worker, registered up front so the
        // per-task path never touches the recorder.
        let obs = self
            .recorder
            .as_ref()
            .map(|r| r.register(format!("worker-{w}")));
        loop {
            // Acquire pairs with the Release poison store so a bailing
            // worker sees why it is bailing.
            if ctx.poisoned.load(Ordering::Acquire) {
                break;
            }
            ctx.phases.set(w, phase::IDLE, 0);
            let dispatch = match ctx.source.next_task(w) {
                Some(d) => d,
                None => break,
            };
            let i = dispatch.task;
            let tid = ctx.first_tid + i as u64;
            if dispatch.stolen > 0 {
                if let Some(o) = obs.as_ref() {
                    o.record(EventKind::SchedSteal {
                        task: tid,
                        tasks: dispatch.stolen,
                    });
                }
            }
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.run_task(&ctx.tasks[i], tid, w, ctx, obs.as_ref())
            }));
            if let Err(payload) = result {
                // Release publishes the failure to every worker's and
                // waiter's Acquire load.
                ctx.poisoned.store(true, Ordering::Release);
                // Close the panicking attempt's lifecycle so abort
                // attribution does not lose it; the distinct reason
                // keeps it out of contention statistics.
                if let Some(o) = obs.as_ref() {
                    o.record(EventKind::Abort {
                        task: tid,
                        reason: AbortReason::Poisoned,
                    });
                }
                ctx.panic_payload.lock().get_or_insert(payload);
                break;
            }
        }
        ctx.phases.set(w, phase::DONE, 0);
    }

    /// The commit-clock watchdog: ticks at a tenth of the interval,
    /// resetting whenever the clock or any progress counter moves. A
    /// full interval with no movement means the run is stuck (a hung
    /// task body, a stalled commit, a scheduling bug): the watchdog
    /// emits one diagnostic dump — per-worker phase, hot classes,
    /// parked waiters — to stderr and [`Outcome::watchdog_dumps`], then
    /// poisons the run so waiters drain instead of spinning forever
    /// (under [`PanicPolicy::Poison`] the hang also propagates as a
    /// panic from [`Janus::run`]).
    fn watchdog_loop(&self, interval: Duration, ctx: &BatchCtx) {
        let tick = (interval / 10).max(Duration::from_millis(1));
        let mut last = self.progress_vector(ctx);
        let mut stalled = Duration::ZERO;
        let mut fired = false;
        // Acquire pairs with the LiveGuard's AcqRel decrement: once the
        // count hits zero, every worker's final state is visible here.
        while ctx.live.load(Ordering::Acquire) > 0 {
            std::thread::sleep(tick);
            let cur = self.progress_vector(ctx);
            if cur != last {
                last = cur;
                stalled = Duration::ZERO;
                continue;
            }
            if fired {
                continue; // already escalated: just wait for the drain
            }
            stalled += tick;
            if stalled < interval {
                continue;
            }
            fired = true;
            ctx.counters.watchdog_fires.fetch_add(1, Ordering::Relaxed);
            let dump = self.render_watchdog_dump(stalled, ctx);
            eprintln!("{dump}");
            ctx.dumps.lock().push(dump);
            if self.panic_policy == PanicPolicy::Poison {
                ctx.panic_payload.lock().get_or_insert_with(|| {
                    Box::new(format!(
                        "janus watchdog: no commit progress within {interval:?}"
                    )) as Box<dyn std::any::Any + Send>
                });
            }
            // Release publishes the poison to waiters' Acquire loads.
            ctx.poisoned.store(true, Ordering::Release);
        }
    }

    /// Everything whose movement counts as progress to the watchdog.
    fn progress_vector(&self, ctx: &BatchCtx) -> [u64; 7] {
        [
            ctx.oracle().now(),
            // Relaxed: diagnostic sampling only — any observed movement
            // counts as progress, staleness just delays one tick.
            ctx.turn.load(Ordering::Relaxed),
            ctx.counters.commits.load(Ordering::Relaxed),
            ctx.counters.retries.load(Ordering::Relaxed),
            ctx.counters.tasks_failed.load(Ordering::Relaxed),
            ctx.counters.tombstones.load(Ordering::Relaxed),
            self.faults.as_ref().map_or(0, |f| f.stats().injected()),
        ]
    }

    /// The watchdog's diagnostic dump: what every worker was doing when
    /// progress stopped, how many were parked behind someone else, and
    /// which location classes were carrying the conflicts.
    fn render_watchdog_dump(&self, stalled: Duration, ctx: &BatchCtx) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "janus watchdog: no commit progress for {stalled:?} \
             (commit seq {}, {} commits, {} retries, {} failed)",
            ctx.oracle().now(),
            ctx.counters.commits.load(Ordering::Relaxed),
            ctx.counters.retries.load(Ordering::Relaxed),
            ctx.counters.tasks_failed.load(Ordering::Relaxed),
        );
        let mut parked = 0;
        for w in 0..ctx.phases.0.len() {
            let (p, task) = ctx.phases.get(w);
            if phase::is_parked(p) {
                parked += 1;
            }
            if task > 0 {
                let _ = writeln!(out, "  worker {w}: {} (task {task})", phase::label(p));
            } else {
                let _ = writeln!(out, "  worker {w}: {}", phase::label(p));
            }
        }
        let _ = writeln!(out, "  parked waiters: {parked}");
        let hot = self.detector.stats().conflicts_by_class();
        if !hot.is_empty() {
            let _ = writeln!(out, "  hot classes:");
            for (class, conflicts) in hot.iter().take(5) {
                let _ = writeln!(out, "    {class}: {conflicts} conflicts");
            }
        }
        out
    }

    /// `RUNTASK`, retried until it commits (or, under
    /// [`PanicPolicy::Isolate`], until its body panics and the task is
    /// recorded as failed).
    fn run_task(
        &self,
        task: &Task,
        tid: u64,
        worker: usize,
        ctx: &BatchCtx,
        obs: Option<&RingHandle>,
    ) {
        // Consecutive aborts of this task (drives the backoff curve) and
        // the location classes its last aborted attempt touched (drives
        // degraded-retry targeting).
        let mut attempt: u32 = 0;
        let mut aborted_classes: Vec<ClassId> = Vec::new();
        'restart: loop {
            // Retry-budget escalation: once this task has burned its
            // conflict-abort budget, every further attempt runs under
            // the serial token unconditionally, so it cannot be starved
            // forever by the contenders that keep aborting it. Ordered
            // runs skip this (commit order already bounds livelock, and
            // a token held across an ordered wait could deadlock a
            // predecessor's retry).
            let escalated = !self.ordered && matches!(self.max_attempts, Some(n) if attempt >= n);
            if escalated && Some(attempt) == self.max_attempts {
                ctx.counters.escalations.fetch_add(1, Ordering::Relaxed);
            }
            let _escalation_guard = if escalated {
                ctx.phases.set(worker, phase::SERIAL_WAIT, tid);
                // The degradation controller's token doubles as the
                // escalation token so escalated and degraded retries
                // serialize against each other; without a controller the
                // run-level token serves.
                match ctx.controller.as_ref() {
                    Some(c) => (Some(c.force_guard()), None),
                    None => (None, Some(ctx.escalation.lock())),
                }
            } else {
                (None, None)
            };
            // Degraded retries of hot-class tasks hold the serial token
            // for the whole re-execution; first attempts stay optimistic.
            // An escalated attempt already holds the same token (the
            // mutex is not reentrant).
            let _serial = match ctx.controller.as_ref() {
                Some(c) if attempt > 0 && !escalated => c.serial_guard(&aborted_classes),
                _ => None,
            };
            // CREATETRANSACTION: draw the begin timestamp from the
            // oracle, pin the GC watermark, then snapshot shard by
            // shard. The order is load → register → snapshot: once the
            // begin is registered the watermark can no longer pass it,
            // so every entry a window position of this transaction
            // could reference survives pruning (the GC-safety note in
            // `shard.rs`). The per-shard snapshots are taken one read
            // lock at a time — a torn cut across shards is sound
            // because validation is per-location and each location
            // lives in exactly one shard (its snapshot value and its
            // window entries come from one consistent cut).
            let n = ctx.shards().len();
            let begin = ctx.oracle().now();
            if self.gc_history {
                ctx.active().register(begin);
            }
            let mut begin_pos: Vec<u64> = Vec::with_capacity(n);
            let mut maps: Vec<janus_persist::PersistentMap<janus_log::LocId, crate::store::Slot>> =
                Vec::with_capacity(n);
            for shard in ctx.shards() {
                let g = shard.data.read();
                begin_pos.push(g.head());
                maps.push(if self.eager_privatization {
                    // Deep copy: every slot (and its value) is cloned.
                    g.slots
                        .iter()
                        .map(|(loc, slot)| (*loc, slot.clone()))
                        .collect()
                } else {
                    g.slots.clone() // O(1) persistent snapshot
                });
            }
            let maps: Arc<[janus_persist::PersistentMap<janus_log::LocId, crate::store::Slot>]> =
                maps.into();
            if let Some(o) = obs {
                o.set_clock(begin);
                o.record(EventKind::Begin { task: tid });
            }
            // RUNSEQUENTIAL against the privatized copy. The body runs
            // inside its own catch so a panic can be attributed to this
            // task and — under `Isolate` — absorbed without taking the
            // run down. An injected panic takes the identical path a
            // genuine one would.
            let mut tx = TxView::new_sharded(Arc::clone(&maps));
            ctx.phases.set(worker, phase::RUNNING, tid);
            let body = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if let Some(plan) = &self.faults {
                    if plan.should_inject(FaultKind::TaskPanic, tid, attempt) {
                        panic!("janus-fault: injected panic (task {tid}, attempt {attempt})");
                    }
                }
                task.run(&mut tx);
            }));
            if let Err(payload) = body {
                match self.panic_policy {
                    // Rethrow: the worker loop's outer catch poisons the
                    // run and stores the payload, exactly as before the
                    // policy existed.
                    PanicPolicy::Poison => std::panic::resume_unwind(payload),
                    PanicPolicy::Isolate => {
                        self.isolate_failure(tid, worker, begin, attempt, payload, ctx, obs);
                        return;
                    }
                }
            }

            // In-order execution: wait until all preceding transactions
            // have committed.
            if self.ordered {
                ctx.phases.set(worker, phase::ORDERED_WAIT, tid);
                // Escalating spin → yield → park instead of a bare
                // `yield_now` loop: long waits (deep pipelines, slow
                // predecessors) cede the core. The source hook lets
                // stealing schedulers count waits that held queued
                // work (the queue itself stays stealable throughout).
                ctx.source.on_park(worker);
                let mut parker = Parker::new();
                // Acquire pairs with the committer's Release turn
                // advance: holding the turn implies every predecessor's
                // shard publishes are visible to this validation.
                while ctx.turn.load(Ordering::Acquire) != tid {
                    if ctx.poisoned.load(Ordering::Acquire) {
                        // A predecessor panicked and will never commit;
                        // spinning would hang forever. The distinct
                        // abort reason keeps these bailouts out of
                        // contention attribution.
                        ctx.source.on_unpark(worker);
                        if self.gc_history {
                            ctx.active().unregister(begin);
                        }
                        if let Some(o) = obs {
                            o.record(EventKind::Abort {
                                task: tid,
                                reason: AbortReason::Poisoned,
                            });
                        }
                        return;
                    }
                    parker.pause();
                }
                ctx.source.on_unpark(worker);
            }

            let entry = SnapshotState::sharded(maps);
            // Decompose the transaction's own log exactly once per
            // attempt; the same pre-decomposed log drives every
            // validation extension below and, on success, becomes the
            // history segment other transactions validate against.
            let txn_log = Arc::new(CommittedLog::new(std::mem::take(&mut tx.log)));
            // Publish this attempt's footprint to the cross-batch gate
            // before validating: successor batches can start proving
            // disjointness while this transaction is still in flight.
            if let Some(g) = ctx.gate.as_deref() {
                g.note_executed(tid, txn_log.fingerprint());
            }
            // The shards this transaction touched, ascending — the
            // canonical lock order of the commit path below.
            let mut touched: Vec<usize> = txn_log.index().locs.keys().map(|l| l.shard(n)).collect();
            touched.sort_unstable();
            touched.dedup();
            // What each touched shard's history will receive: the whole
            // pre-decomposed log when one shard holds the entire
            // footprint (the common case under class affinity), else a
            // per-shard split — publishing the full log to several
            // shards would make multi-shard validators see each
            // operation once per shard.
            let publish: Vec<Arc<CommittedLog>> = if touched.len() <= 1 {
                touched.iter().map(|_| Arc::clone(&txn_log)).collect()
            } else {
                touched
                    .iter()
                    .map(|&s| {
                        let ops: Vec<janus_log::Op> = txn_log
                            .ops()
                            .iter()
                            .filter(|op| op.loc.shard(n) == s)
                            .cloned()
                            .collect();
                        Arc::new(CommittedLog::new(ops))
                    })
                    .collect()
            };
            // REPLAYLOGGEDOPERATIONS, pre-grouped per shard: each
            // publish log's per-location index already lists that
            // shard's operations in log order, so the replay plan is
            // assembled here — outside the commit locks — and the
            // write-lock body below shrinks to one clone-apply-writeback
            // pass per touched location.
            let replay: Vec<Vec<(janus_log::LocId, Vec<&janus_log::Op>)>> = publish
                .iter()
                .map(|log| {
                    log.index()
                        .locs
                        .iter()
                        .map(|(loc, dl)| {
                            let mut ops = Vec::with_capacity(dl.ops.len());
                            log.resolve(&dl.ops, &mut ops);
                            (*loc, ops)
                        })
                        .collect()
                })
                .collect();
            let mut session = self.detector.begin_validation_traced(&entry, &txn_log, obs);
            // Per touched shard: the absolute history position this
            // attempt has validated up to (positional, not
            // ticket-indexed — pruned prefixes and skipped turns leave
            // no holes).
            let mut validated: Vec<u64> = touched.iter().map(|&s| begin_pos[s]).collect();
            let mut served_nonempty = false;
            loop {
                ctx.phases.set(worker, phase::VALIDATING, tid);
                if let Some(o) = obs {
                    o.set_clock(ctx.oracle().now());
                }
                // GETCOMMITTEDHISTORY, per touched shard — each read
                // lock only clones `Arc`s to that shard's new committed
                // segments; detection runs with no lock held and no
                // operation copied. On the first pass the window opens
                // at the begin positions; after a lost commit race only
                // each shard's delta is fetched and re-validated.
                // Cross-shard concatenation order is irrelevant: the
                // detector checks per-location subsequences and every
                // location lives in exactly one shard.
                let mut delta: Vec<Arc<CommittedLog>> = Vec::new();
                for (k, &s) in touched.iter().enumerate() {
                    let g = ctx.shards()[s].data.read();
                    let head = g.head();
                    if head > validated[k] {
                        g.collect_from(validated[k], &mut delta);
                        validated[k] = head;
                    }
                }
                if !delta.is_empty() {
                    ctx.counters
                        .zero_copy_windows
                        .fetch_add(1, Ordering::Relaxed);
                    if served_nonempty {
                        ctx.counters
                            .delta_revalidations
                            .fetch_add(1, Ordering::Relaxed);
                        if let Some(o) = obs {
                            o.record(EventKind::DeltaRevalidate {
                                window_segments: delta.len() as u64,
                            });
                        }
                    } else if let Some(o) = obs {
                        o.record(EventKind::ValidateOpen {
                            window_segments: delta.len() as u64,
                        });
                    }
                    served_nonempty = true;
                }
                let mut conflict = session.extend(&HistoryWindow::new(&delta));
                // A forced conflict flips a clean verdict so the full
                // genuine abort path (counters, events, degradation,
                // backoff) runs; a real conflict is never masked.
                if !conflict {
                    if let Some(plan) = &self.faults {
                        if plan.should_inject(FaultKind::ForcedConflict, tid, attempt) {
                            conflict = true;
                        }
                    }
                }
                if conflict {
                    ctx.counters.retries.fetch_add(1, Ordering::Relaxed);
                    if self.gc_history {
                        ctx.active().unregister(begin);
                    }
                    if let Some(o) = obs {
                        o.record(EventKind::Abort {
                            task: tid,
                            reason: AbortReason::Conflict,
                        });
                    }
                    if let Some(c) = ctx.controller.as_ref() {
                        // The decomposition index holds one class per
                        // distinct location — clone from there instead of
                        // once per logged operation.
                        aborted_classes.clear();
                        aborted_classes
                            .extend(txn_log.index().locs.values().map(|dl| dl.class.clone()));
                        aborted_classes.sort_unstable();
                        aborted_classes.dedup();
                        if let Some(on) = c.record(&aborted_classes, true) {
                            if let Some(o) = obs {
                                o.record(EventKind::SchedDegrade { on });
                            }
                        }
                    }
                    let hint = ctx
                        .source
                        .on_abort(worker, (tid - ctx.first_tid) as usize, attempt);
                    attempt += 1;
                    if hint.steps > 0 {
                        if let Some(o) = obs {
                            o.record(EventKind::SchedBackoff {
                                task: tid,
                                steps: hint.steps,
                            });
                        }
                        ctx.phases.set(worker, phase::BACKOFF, tid);
                        // Yield the slot instead of hot-restarting; bail
                        // promptly if the run is poisoned meanwhile.
                        // Any work still queued on this worker's lane
                        // stays published for stealing while it sleeps.
                        ctx.source.on_park(worker);
                        backoff::wait(hint.steps, || ctx.poisoned.load(Ordering::SeqCst));
                        ctx.source.on_unpark(worker);
                    }
                    continue 'restart; // abort: rerun from scratch
                }
                // An injected stall delays the transaction at its most
                // sensitive point — validated but not yet committed — to
                // widen commit races and exercise the watchdog.
                if let Some(plan) = &self.faults {
                    if plan.should_inject(FaultKind::CommitStall, tid, attempt) {
                        std::thread::sleep(Duration::from_micros(plan.stall_micros(tid, attempt)));
                    }
                }
                // The cross-batch commit gate: inside a block pipeline,
                // a transaction whose footprint may intersect the
                // predecessor batch parks here until that batch is done
                // (batch boundaries are commit barriers only for
                // conflicting footprints). Parking re-uses the
                // ordered-wait phase word — same meaning: waiting on a
                // predecessor's commit. Staleness accrued while parked
                // is caught by the per-shard head check below, which
                // re-validates just the delta.
                if let Some(g) = ctx.gate.as_deref() {
                    if !g.may_commit(tid, txn_log.fingerprint()) {
                        ctx.counters.gate_waits.fetch_add(1, Ordering::Relaxed);
                        ctx.phases.set(worker, phase::ORDERED_WAIT, tid);
                        // Tell the source this worker is blocking: its
                        // remaining queue is already published (steal
                        // sources keep all undispatched work stealable
                        // by construction), so gate-parking strands
                        // nothing — the hook just counts the exposure.
                        ctx.source.on_park(worker);
                        let mut parker = Parker::new();
                        loop {
                            if ctx.poisoned.load(Ordering::Acquire) {
                                // This batch is failing wholesale; the
                                // gate may never open. Bail like an
                                // ordered waiter.
                                ctx.source.on_unpark(worker);
                                if self.gc_history {
                                    ctx.active().unregister(begin);
                                }
                                if let Some(o) = obs {
                                    o.record(EventKind::Abort {
                                        task: tid,
                                        reason: AbortReason::Poisoned,
                                    });
                                }
                                return;
                            }
                            if g.may_commit(tid, txn_log.fingerprint()) {
                                break;
                            }
                            parker.pause();
                        }
                        ctx.source.on_unpark(worker);
                    }
                }
                // COMMIT: write-lock exactly the touched shards, in
                // ascending shard order (the global lock-ordering
                // invariant that makes per-shard commits deadlock-free).
                {
                    ctx.phases.set(worker, phase::COMMITTING, tid);
                    let mut guards = Vec::with_capacity(touched.len());
                    for &s in &touched {
                        let t0 = Instant::now();
                        guards.push(ctx.shards()[s].data.write());
                        ctx.shards()[s].stats.lock_wait(t0.elapsed());
                    }
                    // Per-shard head check, replacing the old global
                    // `clock == now` test: if any touched shard's
                    // history moved past what this attempt validated,
                    // re-validate just the delta.
                    if guards.iter().zip(&validated).any(|(g, &v)| g.head() != v) {
                        continue; // a shard evolved: re-validate the delta
                    }
                    // Draw the commit ticket while all touched shard
                    // locks are held: two committers sharing a shard
                    // are fully ordered by that shard's lock, so every
                    // shard's history stays seq-monotone and pruning
                    // below the watermark drops exactly a prefix.
                    let seq = ctx.oracle().ticket();
                    for (k, g) in guards.iter_mut().enumerate() {
                        // Replay the pre-grouped plan: each touched
                        // value is cloned out of the persistent store
                        // once, mutated in place, and written back once.
                        // No per-op map lookups happen under the locks.
                        for (loc, ops) in &replay[k] {
                            let mut slot = g
                                .slots
                                .get(loc)
                                .expect("committed op targets an allocated location")
                                .clone();
                            for op in ops {
                                op.kind.apply(&mut slot.value);
                            }
                            g.slots.insert(*loc, slot);
                        }
                        // The decomposition computed above is shared
                        // as-is: no re-decomposition for this log.
                        g.history.push_back(SeqEntry {
                            seq,
                            log: Arc::clone(&publish[k]),
                        });
                        ctx.shards()[touched[k]].stats.commit();
                    }
                    ctx.counters.commits.fetch_add(1, Ordering::Relaxed);
                    // The durability seam: report the committed ticket
                    // while the touched shard locks are still held, so
                    // every ticket reaches the sink exactly once (see
                    // [`CommitSink`] for why calls may still arrive out
                    // of ticket order across disjoint shards).
                    if let Some(sink) = &self.commit_sink {
                        let mask = touched.iter().fold(0u64, |m, &s| m | (1u64 << s));
                        sink.committed(seq, mask, txn_log.ops());
                    }
                    if let Some(o) = obs {
                        o.set_clock(seq + 1);
                        o.record(EventKind::Commit { task: tid });
                    }
                    if self.gc_history {
                        ctx.active().unregister(begin);
                        // Epoch reclamation: prune the held shards
                        // below the minimum active begin ticket (capped
                        // by the oracle when no transaction is in
                        // flight). The watermark read is lock-free.
                        let floor = ctx.active().watermark().min(ctx.oracle().now());
                        let mut reclaimed = 0;
                        for (k, g) in guards.iter_mut().enumerate() {
                            let dropped = g.prune(floor);
                            if dropped > 0 {
                                ctx.shards()[touched[k]].stats.reclaimed(dropped);
                            }
                            reclaimed += dropped;
                        }
                        if reclaimed > 0 {
                            if let Some(o) = obs {
                                o.record(EventKind::GcReclaim { reclaimed });
                            }
                        }
                    }
                }
                if self.ordered {
                    // Release pairs with successors' Acquire turn loads:
                    // taking the turn implies seeing this commit's shard
                    // publishes.
                    ctx.turn.store(tid + 1, Ordering::Release);
                }
                // Scheduler bookkeeping happens after the shard locks
                // are released: none of it is on the commit critical
                // path.
                ctx.source.on_commit(worker, (tid - ctx.first_tid) as usize);
                if let Some(c) = ctx.controller.as_ref() {
                    if let Some(on) = c.record(&[], false) {
                        if let Some(o) = obs {
                            o.record(EventKind::SchedDegrade { on });
                        }
                    }
                }
                return;
            }
        }
    }

    /// Closes a panicking attempt under [`PanicPolicy::Isolate`]: the
    /// transaction's privatized effects are dropped (nothing was ever
    /// published), the task is recorded as failed, and — in ordered
    /// runs — its commit turn is released with a tombstone so successors
    /// never hang waiting for a commit that cannot come.
    #[allow(clippy::too_many_arguments)] // closes run_task's explicit state
    fn isolate_failure(
        &self,
        tid: u64,
        worker: usize,
        begin: u64,
        attempt: u32,
        payload: Box<dyn std::any::Any + Send>,
        ctx: &BatchCtx,
        obs: Option<&RingHandle>,
    ) {
        if self.gc_history {
            ctx.active().unregister(begin);
        }
        // The gate must not wait forever on a task that will never
        // produce a log.
        if let Some(g) = ctx.gate.as_deref() {
            g.note_failed(tid);
        }
        ctx.counters.tasks_failed.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = obs {
            o.record(EventKind::Abort {
                task: tid,
                reason: AbortReason::Failed,
            });
        }
        ctx.failed.lock().push(TaskFailure {
            task: tid,
            message: payload_message(payload.as_ref()),
            attempts: attempt + 1,
        });
        if self.ordered {
            self.release_turn_with_tombstone(tid, worker, ctx);
        }
    }

    /// In ordered runs a failed task still owns a commit turn: every
    /// successor waits for `turn == tid + 1`. Waiting for this task's
    /// own turn and then advancing past it releases them. The released
    /// turn consumes one oracle ticket — keeping the
    /// `commits + tombstones = seq - 1` identity — but publishes no
    /// history entry: shard windows are positional, so a skipped turn
    /// leaves no hole for successors to validate against (the old
    /// clock-indexed history needed an empty tombstone log here).
    fn release_turn_with_tombstone(&self, tid: u64, worker: usize, ctx: &BatchCtx) {
        ctx.phases.set(worker, phase::ORDERED_WAIT, tid);
        let mut parker = Parker::new();
        // Acquire/Release on the turn as in the commit path.
        while ctx.turn.load(Ordering::Acquire) != tid {
            if ctx.poisoned.load(Ordering::Acquire) {
                // The run is already failing wholesale; successors bail
                // on the poison flag, not the turn.
                return;
            }
            parker.pause();
        }
        let seq = ctx.oracle().ticket();
        // The consumed ticket must still reach the sink: journals keep
        // the seq stream dense by recording an explicit skip.
        if let Some(sink) = &self.commit_sink {
            sink.skipped(seq);
        }
        ctx.counters.tombstones.fetch_add(1, Ordering::Relaxed);
        ctx.turn.store(tid + 1, Ordering::Release);
    }

    /// Executes the tasks sequentially (single-threaded,
    /// synchronization-free), returning the final state and the
    /// [`TrainingRun`] trace that the training phase consumes.
    pub fn run_sequential(store: Store, tasks: &[Task]) -> (Store, TrainingRun) {
        let initial = store.to_map_state();
        let mut slots = store.slots.clone();
        let mut task_logs = Vec::with_capacity(tasks.len());
        for task in tasks {
            let mut tx = TxView::new(slots.clone());
            task.run(&mut tx);
            let log = std::mem::take(&mut tx.log);
            slots = tx.into_state();
            task_logs.push(log);
        }
        let mut final_store = store;
        final_store.slots = slots;
        (final_store, TrainingRun { initial, task_logs })
    }

    /// Convenience wrapper: runs the tasks sequentially on training data
    /// and trains a commutativity cache from the trace (Figure 6's
    /// offline path).
    pub fn train_sequential(
        store: Store,
        tasks: &[Task],
        config: TrainConfig,
    ) -> (Store, CommutativityCache, TrainReport) {
        let (final_store, run) = Self::run_sequential(store, tasks);
        let (cache, report) = train(&[run], config);
        (final_store, cache, report)
    }
}

impl std::fmt::Debug for Janus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Janus")
            .field("detector", &self.detector.name())
            .field("threads", &self.threads)
            .field("ordered", &self.ordered)
            .field("schedule", &self.schedule.name())
            .field("degrade", &self.degrade)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_detect::{SequenceDetector, WriteSetDetector};
    use janus_relational::Value;

    fn identity_tasks(work: janus_log::LocId, n: i64) -> Vec<Task> {
        (1..=n)
            .map(|w| {
                Task::new(move |tx: &mut TxView| {
                    tx.add(work, w);
                    tx.add(work, -w);
                })
            })
            .collect()
    }

    #[test]
    fn parallel_identity_run_preserves_state() {
        let mut store = Store::new();
        let work = store.alloc("work", Value::int(0));
        let janus = Janus::new(Arc::new(SequenceDetector::new())).threads(4);
        let outcome = janus.run(store, identity_tasks(work, 16));
        assert_eq!(outcome.store.value(work), Some(&Value::int(0)));
        assert_eq!(outcome.stats.commits, 16);
    }

    #[test]
    fn write_set_detector_still_terminates() {
        let mut store = Store::new();
        let work = store.alloc("work", Value::int(0));
        let janus = Janus::new(Arc::new(WriteSetDetector::new())).threads(4);
        let outcome = janus.run(store, identity_tasks(work, 8));
        assert_eq!(outcome.store.value(work), Some(&Value::int(0)));
        assert_eq!(outcome.stats.commits, 8);
    }

    #[test]
    fn unordered_adds_serialize_to_sum() {
        let mut store = Store::new();
        let acc = store.alloc("acc", Value::int(0));
        let tasks: Vec<Task> = (1..=20)
            .map(|d| Task::new(move |tx: &mut TxView| tx.add(acc, d)))
            .collect();
        let janus = Janus::new(Arc::new(SequenceDetector::new())).threads(4);
        let outcome = janus.run(store, tasks);
        assert_eq!(outcome.store.value(acc), Some(&Value::int(210)));
    }

    #[test]
    fn ordered_run_matches_sequential() {
        // Tasks whose effect depends on order: append task id scaled by
        // position via read-modify-write.
        let mk = || {
            let mut store = Store::new();
            let x = store.alloc("x", Value::int(1));
            let tasks: Vec<Task> = (1..=6)
                .map(|i| {
                    Task::new(move |tx: &mut TxView| {
                        let v = tx.read_int(x);
                        tx.write(x, v * 3 + i);
                    })
                })
                .collect();
            (store, tasks, x)
        };
        let (store_seq, tasks_seq, x) = mk();
        let (seq_store, _) = Janus::run_sequential(store_seq, &tasks_seq);

        let (store_par, tasks_par, _) = mk();
        let janus = Janus::new(Arc::new(SequenceDetector::new()))
            .threads(3)
            .ordered(true);
        let outcome = janus.run(store_par, tasks_par);
        assert_eq!(outcome.store.value(x), seq_store.value(x));
    }

    #[test]
    fn sequential_run_produces_training_logs() {
        let mut store = Store::new();
        let work = store.alloc("work", Value::int(0));
        let tasks = identity_tasks(work, 3);
        let (final_store, run) = Janus::run_sequential(store, &tasks);
        assert_eq!(final_store.value(work), Some(&Value::int(0)));
        assert_eq!(run.task_logs.len(), 3);
        assert!(run.task_logs.iter().all(|log| log.len() == 2));
        assert_eq!(run.initial.0[&work], Value::int(0));
    }

    #[test]
    fn trained_cache_plugs_into_cached_detector() {
        use janus_detect::CachedSequenceDetector;

        let mut store = Store::new();
        let work = store.alloc("work", Value::int(0));
        let (_, cache, report) = Janus::train_sequential(
            store.clone(),
            &identity_tasks(work, 4),
            TrainConfig::default(),
        );
        assert!(report.entries_added > 0);

        let detector = Arc::new(CachedSequenceDetector::new(cache));
        let janus = Janus::new(detector.clone()).threads(4);
        let outcome = janus.run(store, identity_tasks(work, 12));
        assert_eq!(outcome.store.value(work), Some(&Value::int(0)));
        let (_, _, hits, _) = detector.stats().snapshot();
        // With contention we expect at least some conflict queries to have
        // been answered from the cache; absence of any retry also proves
        // the point.
        let _ = hits;
        assert_eq!(outcome.stats.commits, 12);
    }

    #[test]
    fn traced_run_matches_run_stats_and_is_well_formed() {
        let mut store = Store::new();
        let work = store.alloc("work", Value::int(0));
        let recorder = Recorder::new();
        let janus = Janus::new(Arc::new(SequenceDetector::new()))
            .threads(4)
            .recorder(Arc::clone(&recorder));
        let outcome = janus.run(store, identity_tasks(work, 16));
        let trace = recorder.finish();
        trace
            .check_well_formed()
            .expect("lifecycle trace well-formed");
        assert_eq!(trace.count("commit"), outcome.stats.commits);
        assert_eq!(trace.count("abort"), outcome.stats.retries);
        assert_eq!(
            trace.count("begin"),
            outcome.stats.commits + outcome.stats.retries,
            "every attempt begins exactly once"
        );
        assert_eq!(
            trace.count("validate_open") + trace.count("delta_revalidate"),
            outcome.stats.zero_copy_windows
        );
        assert_eq!(
            trace.count("delta_revalidate"),
            outcome.stats.delta_revalidations
        );
    }

    #[test]
    fn untraced_run_records_nothing() {
        let mut store = Store::new();
        let work = store.alloc("work", Value::int(0));
        let janus = Janus::new(Arc::new(SequenceDetector::new())).threads(2);
        let outcome = janus.run(store, identity_tasks(work, 4));
        assert_eq!(outcome.stats.commits, 4);
    }

    #[test]
    fn retry_ratio_computation() {
        let stats = RunStats {
            commits: 10,
            retries: 5,
            wall: Duration::ZERO,
            ..Default::default()
        };
        assert!((stats.retry_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(RunStats::default().retry_ratio(), 0.0);
    }

    #[test]
    fn detection_cost_counters_are_populated() {
        // Force two transactions to overlap: each task body spins until
        // both have started, so whichever commits second must validate
        // against a non-empty window on the shared location.
        let mut store = Store::new();
        let work = store.alloc("work", Value::int(0));
        let started = Arc::new(AtomicU64::new(0));
        let tasks: Vec<Task> = (0..2)
            .map(|_| {
                let started = Arc::clone(&started);
                Task::new(move |tx: &mut TxView| {
                    tx.add(work, 1);
                    started.fetch_add(1, Ordering::SeqCst);
                    while started.load(Ordering::SeqCst) < 2 {
                        std::thread::yield_now();
                    }
                    tx.add(work, -1);
                })
            })
            .collect();
        let outcome = Janus::new(Arc::new(SequenceDetector::new()))
            .threads(2)
            .run(store, tasks);
        assert_eq!(outcome.stats.commits, 2);
        assert!(
            outcome.stats.zero_copy_windows > 0,
            "the second committer must fetch a non-empty window"
        );
        assert!(
            outcome.stats.detect_ops_scanned > 0,
            "common-location cell checks must scan operations"
        );
        // Every re-validation is bounded by the number of served windows.
        assert!(outcome.stats.delta_revalidations <= outcome.stats.zero_copy_windows);
    }

    #[test]
    fn uncontended_run_scans_nothing() {
        // Disjoint locations: windows may be served, but no common cell
        // ever forms, so detection scans zero operations.
        let mut store = Store::new();
        let locs: Vec<_> = (0..8)
            .map(|i| store.alloc(format!("x{i}").as_str(), Value::int(0)))
            .collect();
        let tasks: Vec<Task> = locs
            .iter()
            .map(|&l| Task::new(move |tx: &mut TxView| tx.add(l, 1)))
            .collect();
        let outcome = Janus::new(Arc::new(SequenceDetector::new()))
            .threads(4)
            .run(store, tasks);
        assert_eq!(outcome.stats.commits, 8);
        assert_eq!(outcome.stats.detect_ops_scanned, 0);
        assert_eq!(outcome.stats.retries, 0);
    }

    #[test]
    fn task_panic_propagates_and_poisons_the_run() {
        let mut store = Store::new();
        let work = store.alloc("work", Value::int(0));
        let mut tasks = identity_tasks(work, 6);
        tasks.insert(3, Task::new(|_tx: &mut TxView| panic!("boom in task body")));
        let recorder = Recorder::new();
        let janus = Janus::new(Arc::new(SequenceDetector::new()))
            .threads(2)
            .recorder(Arc::clone(&recorder));
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| janus.run(store, tasks)));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("boom"), "original payload preserved: {msg:?}");
        // Even a poisoned run's trace is well-formed: the panicking
        // attempt is closed by a poisoned abort, so every begin is
        // accounted for by a commit or an abort.
        let trace = recorder.finish();
        trace
            .check_well_formed()
            .expect("poisoned trace still well-formed");
        assert_eq!(
            trace.count("begin"),
            trace.count("commit") + trace.count("abort"),
            "commits + aborts (conflict and in-flight poisoned) close every attempt"
        );
        assert!(
            trace.aborts_with_reason(janus_obs::AbortReason::Poisoned) >= 1,
            "the panicking attempt is attributed to poisoning, not contention"
        );
    }

    #[test]
    fn ordered_run_with_panicking_task_does_not_hang() {
        let mut store = Store::new();
        let work = store.alloc("work", Value::int(0));
        let mut tasks = identity_tasks(work, 6);
        // The panicking task blocks every successor's turn; poisoning
        // must release them.
        tasks[1] = Task::new(|_tx: &mut TxView| panic!("ordered boom"));
        let janus = Janus::new(Arc::new(SequenceDetector::new()))
            .threads(3)
            .ordered(true);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| janus.run(store, tasks)));
        assert!(result.is_err(), "panic must propagate, not hang");
    }

    fn hot_rmw_tasks(loc: janus_log::LocId, n: i64) -> Vec<Task> {
        (1..=n)
            .map(|d| {
                Task::new(move |tx: &mut TxView| {
                    let v = tx.read_int(loc);
                    tx.write(loc, v + d);
                })
            })
            .collect()
    }

    #[test]
    fn backoff_policy_commits_all_tasks_under_contention() {
        let mut store = Store::new();
        let hot = store.alloc("hot", Value::int(0));
        let outcome = Janus::new(Arc::new(WriteSetDetector::new()))
            .threads(4)
            .schedule(Arc::new(janus_sched::Backoff::new(7)))
            .run(store, hot_rmw_tasks(hot, 16));
        assert_eq!(outcome.stats.commits, 16);
        assert_eq!(outcome.store.value(hot), Some(&Value::int((1..=16).sum())));
        assert_eq!(outcome.sched.dispatched, 16);
        assert_eq!(
            outcome.sched.backoff_waits, outcome.stats.retries,
            "every conflict abort backs off exactly once"
        );
    }

    #[test]
    fn affinity_policy_commits_all_tasks() {
        let mut store = Store::new();
        let hot = store.alloc("hot", Value::int(0));
        let cold = store.alloc("cold", Value::int(0));
        let mut tasks = hot_rmw_tasks(hot, 8);
        tasks.extend((1..=8).map(|d| Task::new(move |tx: &mut TxView| tx.add(cold, d))));
        // Exact footprints: the hot RMW chain shares hot.0, the adds
        // share cold.0.
        let fps: Vec<Vec<u64>> = (0..8)
            .map(|_| vec![hot.0])
            .chain((0..8).map(|_| vec![cold.0]))
            .collect();
        let outcome = Janus::new(Arc::new(WriteSetDetector::new()))
            .threads(4)
            .schedule(Arc::new(janus_sched::Affinity::new(Arc::new(
                janus_sched::ExactFootprints(fps),
            ))))
            .run(store, tasks);
        assert_eq!(outcome.stats.commits, 16);
        assert_eq!(outcome.store.value(hot), Some(&Value::int((1..=8).sum())));
        assert_eq!(outcome.store.value(cold), Some(&Value::int((1..=8).sum())));
        assert_eq!(
            outcome.sched.affinity_hits + outcome.sched.affinity_steals,
            16
        );
        assert_eq!(
            outcome.sched.affinity_routed, 14,
            "each chain's tail joined its head's worker"
        );
    }

    #[test]
    fn degradation_serializes_hot_retries_and_preserves_results() {
        let mut store = Store::new();
        let hot = store.alloc("hot", Value::int(0));
        let outcome = Janus::new(Arc::new(WriteSetDetector::new()))
            .threads(4)
            .degrade(janus_sched::DegradeConfig {
                window: 8,
                threshold: 0.25,
            })
            .run(store, hot_rmw_tasks(hot, 32));
        assert_eq!(outcome.stats.commits, 32);
        assert_eq!(outcome.store.value(hot), Some(&Value::int((1..=32).sum())));
        // Degradation may or may not engage depending on interleaving;
        // when it does, serialized retries must have been counted.
        if outcome.sched.degrade_windows > 0 {
            assert!(outcome.sched.serial_retries <= outcome.stats.retries);
        }
    }

    #[test]
    fn ordered_run_ignores_degradation() {
        let mut store = Store::new();
        let x = store.alloc("x", Value::int(1));
        let tasks: Vec<Task> = (1..=8)
            .map(|i| {
                Task::new(move |tx: &mut TxView| {
                    let v = tx.read_int(x);
                    tx.write(x, v * 3 + i);
                })
            })
            .collect();
        let outcome = Janus::new(Arc::new(SequenceDetector::new()))
            .threads(4)
            .ordered(true)
            .degrade(janus_sched::DegradeConfig {
                window: 2,
                threshold: 0.0,
            })
            .run(store, tasks);
        assert_eq!(outcome.stats.commits, 8);
        assert_eq!(outcome.sched.degrade_windows, 0, "unordered-only");
        assert_eq!(outcome.sched.serial_retries, 0);
    }

    #[test]
    fn fifo_outcome_exposes_sched_stats() {
        let mut store = Store::new();
        let work = store.alloc("work", Value::int(0));
        let outcome = Janus::new(Arc::new(SequenceDetector::new()))
            .threads(4)
            .run(store, identity_tasks(work, 12));
        assert_eq!(outcome.sched.dispatched, 12);
        assert_eq!(outcome.sched.backoff_waits, 0, "fifo never backs off");
        assert_eq!(outcome.sched.degrade_windows, 0);
    }

    #[test]
    fn history_gc_reclaims_committed_logs() {
        let mut store = Store::new();
        let work = store.alloc("work", Value::int(0));
        let tasks = identity_tasks(work, 32);
        let outcome = Janus::new(Arc::new(SequenceDetector::new()))
            .threads(4)
            .run(store, tasks);
        assert_eq!(outcome.store.value(work), Some(&Value::int(0)));
        assert!(
            outcome.stats.history_reclaimed > 0,
            "GC should reclaim logs once older transactions drain"
        );
        assert!(outcome.stats.history_reclaimed <= 32);
    }

    #[test]
    fn history_gc_can_be_disabled() {
        let mut store = Store::new();
        let work = store.alloc("work", Value::int(0));
        let tasks = identity_tasks(work, 8);
        let outcome = Janus::new(Arc::new(SequenceDetector::new()))
            .threads(4)
            .gc_history(false)
            .run(store, tasks);
        assert_eq!(outcome.stats.history_reclaimed, 0);
        assert_eq!(outcome.store.value(work), Some(&Value::int(0)));
    }

    #[test]
    fn gc_preserves_correctness_under_contention() {
        // Heavy write-write conflicts + GC: windows must stay valid
        // across pruning.
        let mut store = Store::new();
        let hot = store.alloc("hot", Value::int(0));
        let tasks: Vec<Task> = (0..24)
            .map(|i| Task::new(move |tx: &mut TxView| tx.write(hot, i as i64)))
            .collect();
        let outcome = Janus::new(Arc::new(WriteSetDetector::new()))
            .threads(4)
            .run(store, tasks);
        assert_eq!(outcome.stats.commits, 24);
        let v = outcome
            .store
            .value(hot)
            .and_then(Value::as_int)
            .expect("int");
        assert!((0..24).contains(&v));
    }

    #[test]
    fn isolated_panic_records_failure_and_commits_the_rest() {
        let mut store = Store::new();
        let work = store.alloc("work", Value::int(0));
        let mut tasks = identity_tasks(work, 6);
        tasks[3] = Task::new(|_tx: &mut TxView| panic!("boom in task 4"));
        let recorder = Recorder::new();
        let janus = Janus::new(Arc::new(SequenceDetector::new()))
            .threads(3)
            .panic_policy(PanicPolicy::Isolate)
            .recorder(Arc::clone(&recorder));
        let outcome = janus.run(store, tasks);
        assert_eq!(outcome.stats.commits, 5);
        assert_eq!(outcome.stats.tasks_failed, 1);
        assert_eq!(outcome.store.value(work), Some(&Value::int(0)));
        assert_eq!(outcome.failed.len(), 1);
        assert_eq!(outcome.failed[0].task, 4);
        assert_eq!(outcome.failed[0].attempts, 1);
        assert!(outcome.failed[0].message.contains("boom"));
        let trace = recorder.finish();
        trace
            .check_well_formed()
            .expect("well-formed under Isolate");
        assert_eq!(trace.aborts_with_reason(AbortReason::Failed), 1);
    }

    #[test]
    fn ordered_isolation_tombstones_the_failed_turn() {
        // The failed task owns turn 2; without the tombstone, tasks 3..=6
        // would wait on `clock == tid` forever.
        let mut store = Store::new();
        let work = store.alloc("work", Value::int(0));
        let mut tasks = identity_tasks(work, 6);
        tasks[1] = Task::new(|_tx: &mut TxView| panic!("ordered boom"));
        let outcome = Janus::new(Arc::new(SequenceDetector::new()))
            .threads(3)
            .ordered(true)
            .panic_policy(PanicPolicy::Isolate)
            .run(store, tasks);
        assert_eq!(outcome.stats.commits, 5, "every survivor commits");
        assert_eq!(outcome.stats.tasks_failed, 1);
        assert_eq!(outcome.failed.len(), 1);
        assert_eq!(outcome.failed[0].task, 2);
        assert_eq!(outcome.store.value(work), Some(&Value::int(0)));
    }

    #[test]
    fn seeded_panic_is_isolated_like_a_genuine_one() {
        let mut store = Store::new();
        let work = store.alloc("work", Value::int(0));
        let plan = Arc::new(FaultPlan::from_sites(vec![janus_fault::FaultSite {
            kind: FaultKind::TaskPanic,
            subject: 3,
            attempt: 0,
        }]));
        let outcome = Janus::new(Arc::new(SequenceDetector::new()))
            .threads(3)
            .panic_policy(PanicPolicy::Isolate)
            .faults(Arc::clone(&plan))
            .run(store, identity_tasks(work, 6));
        assert_eq!(outcome.stats.commits, 5);
        assert_eq!(outcome.stats.faults_injected, 1);
        assert_eq!(outcome.failed.len(), 1);
        assert_eq!(outcome.failed[0].task, 3);
        assert!(outcome.failed[0].message.contains("janus-fault"));
        assert_eq!(plan.stats().injected_of(FaultKind::TaskPanic), 1);
    }

    #[test]
    fn forced_conflicts_exhaust_the_budget_and_escalate() {
        // Explicit sites: every task's attempts 0..3 are forced to
        // conflict, so each task commits on attempt 3 after crossing the
        // budget of 2 — the schedule of aborts is fully deterministic.
        let mut store = Store::new();
        let work = store.alloc("work", Value::int(0));
        let sites: Vec<janus_fault::FaultSite> = (1..=8u64)
            .flat_map(|t| {
                (0..3u32).map(move |a| janus_fault::FaultSite {
                    kind: FaultKind::ForcedConflict,
                    subject: t,
                    attempt: a,
                })
            })
            .collect();
        let outcome = Janus::new(Arc::new(SequenceDetector::new()))
            .threads(4)
            .max_attempts(2)
            .faults(Arc::new(FaultPlan::from_sites(sites)))
            .run(store, identity_tasks(work, 8));
        assert_eq!(outcome.stats.commits, 8);
        assert_eq!(outcome.stats.retries, 24, "three forced aborts per task");
        assert_eq!(outcome.stats.faults_injected, 24);
        assert_eq!(
            outcome.stats.retry_budget_escalations, 8,
            "each task crosses the budget exactly once"
        );
        assert_eq!(outcome.store.value(work), Some(&Value::int(0)));
    }

    #[test]
    fn commit_stall_injection_preserves_results() {
        let mut store = Store::new();
        let work = store.alloc("work", Value::int(0));
        let sites = Arc::new(FaultPlan::from_sites(
            (1..=8u64)
                .map(|t| janus_fault::FaultSite {
                    kind: FaultKind::CommitStall,
                    subject: t,
                    attempt: 0,
                })
                .collect(),
        ));
        let outcome = Janus::new(Arc::new(SequenceDetector::new()))
            .threads(4)
            .faults(Arc::clone(&sites))
            .run(store, identity_tasks(work, 8));
        assert_eq!(outcome.stats.commits, 8);
        assert_eq!(outcome.store.value(work), Some(&Value::int(0)));
        assert!(sites.stats().injected_of(FaultKind::CommitStall) >= 8);
    }

    #[test]
    fn watchdog_dump_names_the_stuck_worker() {
        // One task sleeps far past the watchdog interval: the watchdog
        // fires mid-sleep, dumps, and (under Isolate) lets the task
        // finish and commit normally.
        let mut store = Store::new();
        let work = store.alloc("work", Value::int(0));
        let tasks = vec![Task::new(move |tx: &mut TxView| {
            std::thread::sleep(Duration::from_millis(400));
            tx.add(work, 1);
        })];
        let outcome = Janus::new(Arc::new(SequenceDetector::new()))
            .threads(1)
            .panic_policy(PanicPolicy::Isolate)
            .watchdog(Duration::from_millis(50))
            .run(store, tasks);
        assert_eq!(outcome.stats.commits, 1, "the sleeper still commits");
        assert!(outcome.stats.watchdog_fires >= 1);
        assert_eq!(outcome.watchdog_dumps.len(), 1, "the watchdog fires once");
        let dump = &outcome.watchdog_dumps[0];
        assert!(dump.contains("no commit progress"), "dump: {dump}");
        assert!(dump.contains("worker 0: running (task 1)"), "dump: {dump}");
    }

    #[test]
    fn watchdog_under_poison_policy_fails_the_run() {
        let mut store = Store::new();
        let work = store.alloc("work", Value::int(0));
        let tasks = vec![Task::new(move |tx: &mut TxView| {
            std::thread::sleep(Duration::from_millis(400));
            tx.add(work, 1);
        })];
        let janus = Janus::new(Arc::new(SequenceDetector::new()))
            .threads(1)
            .watchdog(Duration::from_millis(50));
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| janus.run(store, tasks)));
        let payload = result.expect_err("a hung run panics under Poison");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("watchdog"), "payload: {msg:?}");
    }

    #[test]
    fn session_batches_accumulate_and_assign_global_tids() {
        // Two batches on one session: the second validates against (and
        // builds on) the first's commits, and its task ids continue
        // where the first stopped.
        let mut store = Store::new();
        let acc = store.alloc("acc", Value::int(0));
        let janus = Janus::new(Arc::new(SequenceDetector::new())).threads(3);
        let session = janus.open_session(store);
        let batch = |lo: i64, hi: i64| -> Vec<Task> {
            (lo..=hi)
                .map(|d| Task::new(move |tx: &mut TxView| tx.add(acc, d)))
                .collect()
        };
        let b1 = janus.run_batch(&session, batch(1, 10), &SpawnExecutor, None);
        assert_eq!(b1.stats.commits, 10);
        assert_eq!(b1.first_tid, 1);
        assert_eq!(
            session.store().value(acc),
            Some(&Value::int((1..=10).sum()))
        );
        let b2 = janus.run_batch(&session, batch(11, 20), &SpawnExecutor, None);
        assert_eq!(b2.stats.commits, 10);
        assert_eq!(b2.first_tid, 11, "task ids are dense across batches");
        assert_eq!(session.commit_seq(), 20);
        let (final_store, report) = session.finish();
        assert_eq!(final_store.value(acc), Some(&Value::int((1..=20).sum())));
        assert_eq!(report.0.iter().map(|s| s.commits).sum::<u64>(), 20);
    }

    #[test]
    fn batch_poison_is_scoped_to_its_batch() {
        // A Poison panic fails its own run_batch call; the session —
        // and a subsequent batch — keep working.
        let mut store = Store::new();
        let acc = store.alloc("acc", Value::int(0));
        let janus = Janus::new(Arc::new(SequenceDetector::new())).threads(2);
        let session = janus.open_session(store);
        let mut tasks: Vec<Task> = (1..=4)
            .map(|d| Task::new(move |tx: &mut TxView| tx.add(acc, d)))
            .collect();
        tasks.push(Task::new(|_tx: &mut TxView| panic!("batch boom")));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            janus.run_batch(&session, tasks, &SpawnExecutor, None)
        }));
        assert!(result.is_err(), "the poisoned batch propagates its panic");
        let survivors: Vec<Task> = (1..=4)
            .map(|d| Task::new(move |tx: &mut TxView| tx.add(acc, 10 * d)))
            .collect();
        let b2 = janus.run_batch(&session, survivors, &SpawnExecutor, None);
        assert_eq!(b2.stats.commits, 4, "the session stays live");
        assert!(!b2.poisoned);
        let v = session
            .store()
            .value(acc)
            .and_then(Value::as_int)
            .expect("int");
        assert!(v >= 100, "second batch's adds all landed: {v}");
    }

    /// A gate that denies each transaction's first poll and opens on the
    /// second — every committer parks exactly once, deterministically,
    /// exercising the park-and-poll commit path without cross-thread
    /// timing.
    #[derive(Default)]
    struct OpenOnSecondPoll {
        polls: parking_lot::Mutex<std::collections::BTreeMap<u64, u32>>,
    }

    impl CommitGate for OpenOnSecondPoll {
        fn note_executed(&self, _tid: u64, _fp: &Fingerprint) {}

        fn note_failed(&self, _tid: u64) {}

        fn may_commit(&self, tid: u64, _fp: &Fingerprint) -> bool {
            let mut polls = self.polls.lock();
            let n = polls.entry(tid).or_insert(0);
            *n += 1;
            *n >= 2
        }
    }

    #[test]
    fn commit_gate_parks_committers_until_it_opens() {
        let mut store = Store::new();
        let acc = store.alloc("acc", Value::int(0));
        let janus = Janus::new(Arc::new(SequenceDetector::new())).threads(4);
        let session = janus.open_session(store);
        let tasks: Vec<Task> = (1..=8)
            .map(|d| Task::new(move |tx: &mut TxView| tx.add(acc, d)))
            .collect();
        let gate = Arc::new(OpenOnSecondPoll::default());
        let b = janus.run_batch(&session, tasks, &SpawnExecutor, Some(gate));
        assert_eq!(b.stats.commits, 8);
        assert_eq!(
            b.stats.commit_gate_waits, 8,
            "every committer parks exactly once at the gate"
        );
        let (final_store, _) = session.finish();
        assert_eq!(final_store.value(acc), Some(&Value::int((1..=8).sum())));
    }

    #[test]
    fn quiet_run_never_wakes_the_watchdog() {
        let mut store = Store::new();
        let work = store.alloc("work", Value::int(0));
        let outcome = Janus::new(Arc::new(SequenceDetector::new()))
            .threads(4)
            .watchdog(Duration::from_secs(5))
            .run(store, identity_tasks(work, 16));
        assert_eq!(outcome.stats.commits, 16);
        assert_eq!(outcome.stats.watchdog_fires, 0);
        assert!(outcome.watchdog_dumps.is_empty());
        assert!(outcome.failed.is_empty());
    }
}
