//! The transaction-local view of the shared state.

use std::sync::Arc;

use janus_log::{Op, OpKind, OpResult, ScalarOp};
use janus_persist::PersistentMap;
use janus_relational::{RelOp, Scalar, Value};

use crate::store::{Slot, SnapshotSlots};
use janus_log::LocId;

/// A transaction's window onto the shared state: the privatized copy it
/// executes against (`t.SharedPrivatized`), plus the operation log
/// (`t.Log`) that conflict detection and commit-time replay consume.
///
/// Every access goes through an explicit method; this is the Rust
/// equivalent of the bytecode instrumentation hooks the Java prototype
/// injects (the substitution is documented in DESIGN.md).
#[derive(Debug)]
pub struct TxView {
    /// The snapshot taken at transaction begin (never mutated): one map
    /// for sequential paths, the per-shard maps for the sharded runtime.
    snapshot: SnapshotSlots,
    /// Privatized slots, copied from the snapshot on first touch and then
    /// mutated in place — a write buffer over the O(1) snapshot.
    overlay: std::collections::HashMap<LocId, Slot>,
    pub(crate) log: Vec<Op>,
}

impl TxView {
    pub(crate) fn new(snapshot: PersistentMap<LocId, Slot>) -> Self {
        TxView {
            snapshot: SnapshotSlots::Single(snapshot),
            overlay: std::collections::HashMap::new(),
            log: Vec::new(),
        }
    }

    /// A view over the sharded runtime's per-shard snapshot maps.
    pub(crate) fn new_sharded(maps: Arc<[PersistentMap<LocId, Slot>]>) -> Self {
        TxView {
            snapshot: SnapshotSlots::Sharded(maps),
            overlay: std::collections::HashMap::new(),
            log: Vec::new(),
        }
    }

    fn apply(&mut self, loc: LocId, kind: OpKind) -> OpResult {
        let slot = match self.overlay.entry(loc) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let from_snapshot = self
                    .snapshot
                    .get(&loc)
                    .unwrap_or_else(|| panic!("access to unallocated location {loc}"))
                    .clone();
                e.insert(from_snapshot)
            }
        };
        let (op, result) = Op::execute(loc, slot.class.clone(), kind, &mut slot.value);
        self.log.push(op);
        result
    }

    /// Folds the privatized slots back into a full state map (used by the
    /// sequential executor between tasks, which always runs over a
    /// single-map snapshot — the sharded runtime replays logs at commit
    /// instead of folding views).
    pub(crate) fn into_state(self) -> PersistentMap<LocId, Slot> {
        let SnapshotSlots::Single(mut slots) = self.snapshot else {
            unreachable!("into_state is only driven by single-map executors")
        };
        for (loc, slot) in self.overlay {
            slots.insert(loc, slot);
        }
        slots
    }

    /// Reads a scalar location.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is unallocated or holds a relational value.
    pub fn read(&mut self, loc: LocId) -> Scalar {
        match self.apply(loc, OpKind::Scalar(ScalarOp::Read)) {
            OpResult::Scalar(s) => s,
            _ => unreachable!("scalar read returns a scalar"),
        }
    }

    /// Reads an integer location.
    ///
    /// # Panics
    ///
    /// Panics if the location does not hold an integer.
    pub fn read_int(&mut self, loc: LocId) -> i64 {
        self.read(loc).as_int().expect("location holds an integer")
    }

    /// Blind-writes a scalar location.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is unallocated.
    pub fn write(&mut self, loc: LocId, value: impl Into<Scalar>) {
        self.apply(loc, OpKind::Scalar(ScalarOp::Write(value.into())));
    }

    /// Adds a delta to an integer location without observing the result
    /// (a blind fetch-add — the `work += weightOf(item)` of Figure 1).
    ///
    /// # Panics
    ///
    /// Panics if `loc` is unallocated or does not hold an integer.
    pub fn add(&mut self, loc: LocId, delta: i64) {
        self.apply(loc, OpKind::Scalar(ScalarOp::Add(delta)));
    }

    /// Raises an integer location to at least `bound` without observing
    /// the result — the semantic lifting of `if (v > loc) loc = v`.
    /// Blind max-updates commute with each other, so concurrent
    /// transactions maintaining a running maximum never conflict.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is unallocated or does not hold an integer.
    pub fn max_with(&mut self, loc: LocId, bound: i64) {
        self.apply(loc, OpKind::Scalar(ScalarOp::Max(bound)));
    }

    /// Applies a primitive relational operation to an ADT location,
    /// returning its result. This is the hook the `janus-adt` abstraction
    /// specifications are built on.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is unallocated or holds a scalar value.
    pub fn rel(&mut self, loc: LocId, op: RelOp) -> OpResult {
        self.apply(loc, OpKind::Rel(op))
    }

    /// The number of operations logged so far.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// The operations logged so far (`t.Log`).
    pub fn log(&self) -> &[Op] {
        &self.log
    }

    /// Consumes the view, returning its operation log (for externally
    /// driven commit protocols).
    pub fn into_log(self) -> Vec<Op> {
        self.log
    }

    /// The current (privatized) value of a location, without logging an
    /// access. Intended for assertions and debugging only — production
    /// code must go through the logged accessors, or conflicts will be
    /// missed.
    pub fn peek(&self, loc: LocId) -> Option<&Value> {
        self.overlay
            .get(&loc)
            .or_else(|| self.snapshot.get(&loc))
            .map(|s| &s.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Store;
    use janus_relational::{tuple, Fd, Formula, Relation, Schema};

    fn view_with(classes: &[(&str, Value)]) -> (TxView, Vec<LocId>) {
        let mut store = Store::new();
        let locs = classes
            .iter()
            .map(|(c, v)| store.alloc(*c, v.clone()))
            .collect();
        (TxView::new(store.slots.clone()), locs)
    }

    #[test]
    fn scalar_roundtrip_and_logging() {
        let (mut tx, locs) = view_with(&[("x", Value::int(10))]);
        let x = locs[0];
        assert_eq!(tx.read_int(x), 10);
        tx.add(x, 5);
        assert_eq!(tx.read_int(x), 15);
        tx.write(x, 100i64);
        assert_eq!(tx.read_int(x), 100);
        assert_eq!(tx.log_len(), 5);
        assert_eq!(tx.peek(x), Some(&Value::int(100)));
    }

    #[test]
    fn relational_access() {
        let schema = Schema::with_fd(&["k", "v"], Fd::new(&[0], &[1]));
        let (mut tx, locs) = view_with(&[("m", Value::Rel(Relation::empty(schema)))]);
        let m = locs[0];
        tx.rel(m, RelOp::insert(tuple![1, 10]));
        let res = tx.rel(m, RelOp::select(Formula::eq(0, 1i64)));
        assert_eq!(res, OpResult::Tuples(vec![tuple![1, 10]]));
        assert_eq!(tx.log_len(), 2);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn unallocated_access_panics() {
        let (mut tx, _) = view_with(&[]);
        tx.read(LocId(99));
    }
}
