//! Lock-free work-stealing lanes shared by the routing policies.
//!
//! Each worker owns a *lane*: an immutable array of routed task indices
//! (fixed at bind time — nothing is ever pushed after placement) plus a
//! single packed `AtomicU64` *span* word holding the live range as
//! `head:u32 | tail:u32`. The owner pops the front with a CAS on
//! `head + 1`; a thief steals *half* the remaining range from the back
//! with a CAS on `tail - k`. Because the whole queue state is one word,
//! every transition is a single CAS: batch steals are linearizable
//! without the owner/thief race that makes multi-element steals unsound
//! in a classic Chase–Lev deque, and there is no ABA — `head` only
//! grows and `tail` only shrinks.
//!
//! A stolen batch is never copied: the thief executes the first
//! (smallest) task and publishes the remainder as a *stash* — a second
//! packed word `src:u16 | start:u24 | end:u24` describing a sub-range
//! of the victim's immutable array. The stash obeys the same protocol
//! (owner pops the front, thieves halve the back), so staged work is
//! itself stealable. A worker only steals when its own span *and* stash
//! are empty, which is why one stash slot per lane suffices.
//!
//! Two consequences fall out of the design:
//!
//! * **Park-then-publish is structural.** Every undispatched task lives
//!   in a span or stash at all times — the only private state is the
//!   task currently executing — so a worker that parks on the commit
//!   gate or sleeps in backoff has, by construction, already published
//!   its remaining work for stealing. The [`TaskSource::on_park`] hook
//!   only counts how often that exposure happens.
//! * **Ordered mode stays live.** Placement appends tasks in submission
//!   order, steals take back sub-ranges, and a thief executes the
//!   smallest stolen task first, so a worker's pending tasks always
//!   have larger indices than the one it is executing. By induction the
//!   smallest uncommitted task is always being executed, so the ordered
//!   commit turn always advances.
//!
//! Victim selection is steal-from-longest, scanning lanes in a probe
//! order derived from the policy seed and the thief's worker id, so tie
//! breaks — and therefore dispatch traces — are reproducible for a
//! given seed and interleaving.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use rand::{rngs::SmallRng, Rng, SeedableRng};

use crate::backoff::{deterministic_steps, BackoffHint};
use crate::policy::{Dispatch, SchedulePolicy, TaskSource};
use crate::stats::{SchedStats, StealStats};

/// Stash ranges pack task indices into 24 bits.
const MAX_TASKS: usize = 1 << 24;
/// Stash sources pack lane indices into 16 bits.
const MAX_LANES: usize = 1 << 16;

#[inline]
fn pack_span(head: u32, tail: u32) -> u64 {
    (u64::from(head) << 32) | u64::from(tail)
}

#[inline]
fn unpack_span(w: u64) -> (u32, u32) {
    ((w >> 32) as u32, w as u32)
}

#[inline]
fn pack_stash(src: u16, start: u32, end: u32) -> u64 {
    (u64::from(src) << 48) | (u64::from(start & 0x00ff_ffff) << 24) | u64::from(end & 0x00ff_ffff)
}

#[inline]
fn unpack_stash(w: u64) -> (u16, u32, u32) {
    (
        (w >> 48) as u16,
        ((w >> 24) & 0x00ff_ffff) as u32,
        (w & 0x00ff_ffff) as u32,
    )
}

/// One worker's share of the batch.
struct Lane {
    /// Routed task indices, immutable after bind.
    tasks: Box<[u32]>,
    /// Live range of `tasks` as `head:u32 | tail:u32`.
    span: AtomicU64,
    /// Staged stolen range as `src:u16 | start:u24 | end:u24` over
    /// `lanes[src].tasks`; empty when `start == end`.
    stash: AtomicU64,
}

/// Shared steal-traffic counters (drained into [`StealStats`]).
struct Counters {
    hits: AtomicU64,
    stash_pops: AtomicU64,
    attempts: AtomicU64,
    batches: AtomicU64,
    stolen_tasks: AtomicU64,
    parks_with_work: AtomicU64,
    waits: AtomicU64,
    steps: AtomicU64,
    depth_buckets: [AtomicU64; 65],
    depth_sum: AtomicU64,
    depth_max: AtomicU64,
}

impl Counters {
    fn new() -> Self {
        Counters {
            hits: AtomicU64::new(0),
            stash_pops: AtomicU64::new(0),
            attempts: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            stolen_tasks: AtomicU64::new(0),
            parks_with_work: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            steps: AtomicU64::new(0),
            depth_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            depth_sum: AtomicU64::new(0),
            depth_max: AtomicU64::new(0),
        }
    }

    fn observe_depth(&self, v: u64) {
        self.depth_buckets[(64 - v.leading_zeros()) as usize].fetch_add(1, Ordering::Relaxed);
        self.depth_sum.fetch_add(v, Ordering::Relaxed);
        self.depth_max.fetch_max(v, Ordering::Relaxed);
    }
}

/// The shared [`TaskSource`] over a set of lanes. Placement (which lane
/// each task starts on) is the policy's business; dispatch, stealing,
/// and accounting live here.
pub(crate) struct LaneSource {
    lanes: Vec<Lane>,
    /// Undispatched tasks; `next_task` returns `None` only at zero.
    remaining: AtomicUsize,
    stealing: bool,
    seed: u64,
    routed: u64,
    /// Per-thief victim scan order, a seeded deterministic permutation.
    probes: Vec<Vec<usize>>,
    counters: Counters,
}

impl LaneSource {
    /// Builds a source from per-lane task queues (each ascending in
    /// task index — required for ordered-mode liveness).
    pub(crate) fn new(queues: Vec<Vec<usize>>, seed: u64, routed: u64, stealing: bool) -> Self {
        let total: usize = queues.iter().map(Vec::len).sum();
        assert!(
            total < MAX_TASKS,
            "work-stealing lanes support batches under {MAX_TASKS} tasks (got {total})"
        );
        assert!(
            queues.len() < MAX_LANES,
            "work-stealing lanes support under {MAX_LANES} workers"
        );
        let lanes: Vec<Lane> = queues
            .into_iter()
            .map(|q| {
                let tasks: Box<[u32]> = q.into_iter().map(|t| t as u32).collect();
                let tail = tasks.len() as u32;
                Lane {
                    tasks,
                    span: AtomicU64::new(pack_span(0, tail)),
                    stash: AtomicU64::new(pack_stash(0, 0, 0)),
                }
            })
            .collect();
        let n = lanes.len();
        let probes = (0..n)
            .map(|me| {
                let mut order: Vec<usize> = (0..n).filter(|&v| v != me).collect();
                let mut rng =
                    SmallRng::seed_from_u64(seed ^ (me as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                for i in (1..order.len()).rev() {
                    order.swap(i, rng.gen_range(0..=i));
                }
                order
            })
            .collect();
        LaneSource {
            lanes,
            remaining: AtomicUsize::new(total),
            stealing,
            seed,
            routed,
            probes,
            counters: Counters::new(),
        }
    }

    /// Pops the front of `me`'s stash (tasks staged by an earlier steal).
    fn pop_own_stash(&self, me: usize) -> Option<usize> {
        let lane = &self.lanes[me];
        loop {
            let w = lane.stash.load(Ordering::Acquire);
            let (src, s, e) = unpack_stash(w);
            if s == e {
                return None;
            }
            if lane
                .stash
                .compare_exchange(
                    w,
                    pack_stash(src, s + 1, e),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                return Some(self.lanes[src as usize].tasks[s as usize] as usize);
            }
            // Lost a race against a thief raiding the stash; re-read.
        }
    }

    /// Pops the front of `me`'s own span.
    fn pop_own_span(&self, me: usize) -> Option<usize> {
        let lane = &self.lanes[me];
        loop {
            let w = lane.span.load(Ordering::Acquire);
            let (h, t) = unpack_span(w);
            if h == t {
                return None;
            }
            if lane
                .span
                .compare_exchange(w, pack_span(h + 1, t), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(lane.tasks[h as usize] as usize);
            }
        }
    }

    /// One steal probe: scan every other lane in `me`'s seeded order,
    /// pick the longest structure (span or stash), and try to take the
    /// back half with a single CAS. Returns the claimed range over
    /// `lanes[src].tasks` plus the victim depth observed.
    fn try_steal(&self, me: usize) -> Option<(usize, u32, u32)> {
        let mut best: Option<(u32, usize, bool)> = None;
        let mut best_len = 0u32;
        for &v in &self.probes[me] {
            let (h, t) = unpack_span(self.lanes[v].span.load(Ordering::Acquire));
            if t - h > best_len {
                best_len = t - h;
                best = Some((t - h, v, false));
            }
            let (_, s, e) = unpack_stash(self.lanes[v].stash.load(Ordering::Acquire));
            if e - s > best_len {
                best_len = e - s;
                best = Some((e - s, v, true));
            }
        }
        let (_, v, from_stash) = best?;
        let lane = &self.lanes[v];
        if from_stash {
            let w = lane.stash.load(Ordering::Acquire);
            let (src, s, e) = unpack_stash(w);
            let avail = e - s;
            if avail == 0 {
                return None;
            }
            let k = avail.div_ceil(2);
            lane.stash
                .compare_exchange(
                    w,
                    pack_stash(src, s, e - k),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .ok()?;
            self.counters.observe_depth(u64::from(avail));
            Some((src as usize, e - k, e))
        } else {
            let w = lane.span.load(Ordering::Acquire);
            let (h, t) = unpack_span(w);
            let avail = t - h;
            if avail == 0 {
                return None;
            }
            let k = avail.div_ceil(2);
            lane.span
                .compare_exchange(w, pack_span(h, t - k), Ordering::AcqRel, Ordering::Acquire)
                .ok()?;
            self.counters.observe_depth(u64::from(avail));
            Some((v, t - k, t))
        }
    }

    /// Tasks still queued (span + stash) on `me`'s lane.
    fn queued(&self, me: usize) -> u64 {
        let (h, t) = unpack_span(self.lanes[me].span.load(Ordering::Acquire));
        let (_, s, e) = unpack_stash(self.lanes[me].stash.load(Ordering::Acquire));
        u64::from(t - h) + u64::from(e - s)
    }
}

impl TaskSource for LaneSource {
    fn next_task(&self, worker: usize) -> Option<Dispatch> {
        let me = worker % self.lanes.len();
        let mut spins = 0u32;
        loop {
            if let Some(task) = self.pop_own_stash(me) {
                self.remaining.fetch_sub(1, Ordering::AcqRel);
                self.counters.stash_pops.fetch_add(1, Ordering::Relaxed);
                // The transfer was reported on the steal that staged it.
                return Some(Dispatch::own(task));
            }
            if let Some(task) = self.pop_own_span(me) {
                self.remaining.fetch_sub(1, Ordering::AcqRel);
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                return Some(Dispatch::own(task));
            }
            if self.remaining.load(Ordering::Acquire) == 0 {
                return None;
            }
            if self.stealing {
                self.counters.attempts.fetch_add(1, Ordering::Relaxed);
                if let Some((src, s, e)) = self.try_steal(me) {
                    let got = e - s;
                    if got > 1 {
                        // Own span and stash are empty (checked above),
                        // and only the owner stores into an empty
                        // stash, so a plain store cannot race.
                        self.lanes[me]
                            .stash
                            .store(pack_stash(src as u16, s + 1, e), Ordering::Release);
                    }
                    self.remaining.fetch_sub(1, Ordering::AcqRel);
                    self.counters.batches.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .stolen_tasks
                        .fetch_add(u64::from(got), Ordering::Relaxed);
                    return Some(Dispatch {
                        task: self.lanes[src].tasks[s as usize] as usize,
                        stolen: u64::from(got),
                    });
                }
            }
            // Nothing claimable this instant: the last tasks are either
            // executing or mid-transfer. Pause briefly and rescan until
            // `remaining` confirms the batch is drained.
            if spins < 64 {
                std::hint::spin_loop();
                spins += 1;
            } else {
                std::thread::yield_now();
            }
        }
    }

    fn on_abort(&self, _worker: usize, task: usize, attempt: u32) -> BackoffHint {
        let steps = deterministic_steps(self.seed, task as u64, attempt, 16, 4096);
        self.counters.waits.fetch_add(1, Ordering::Relaxed);
        self.counters.steps.fetch_add(steps, Ordering::Relaxed);
        BackoffHint { steps }
    }

    fn on_park(&self, worker: usize) {
        let me = worker % self.lanes.len();
        if self.queued(me) > 0 {
            self.counters
                .parks_with_work
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    fn stats(&self) -> SchedStats {
        let c = &self.counters;
        let hits = c.hits.load(Ordering::Relaxed);
        let stash_pops = c.stash_pops.load(Ordering::Relaxed);
        let batches = c.batches.load(Ordering::Relaxed);
        let buckets = std::array::from_fn(|i| c.depth_buckets[i].load(Ordering::Relaxed));
        SchedStats {
            dispatched: hits + stash_pops + batches,
            backoff_waits: c.waits.load(Ordering::Relaxed),
            backoff_steps: c.steps.load(Ordering::Relaxed),
            affinity_hits: hits,
            affinity_steals: stash_pops + batches,
            affinity_routed: self.routed,
            steal: StealStats {
                attempts: c.attempts.load(Ordering::Relaxed),
                batches,
                stolen_tasks: c.stolen_tasks.load(Ordering::Relaxed),
                parks_with_work: c.parks_with_work.load(Ordering::Relaxed),
                queue_depth: janus_obs::Histogram::from_log2_buckets(
                    buckets,
                    c.depth_sum.load(Ordering::Relaxed),
                    c.depth_max.load(Ordering::Relaxed),
                ),
            },
            ..Default::default()
        }
    }
}

/// Pure work-stealing dispatch: tasks start round-robin across the
/// lanes (no footprint signal) and idle workers steal half the longest
/// queue. Use [`Affinity`](crate::Affinity) when footprints are known;
/// this policy is the footprint-free baseline and the bench ablation
/// handle.
#[derive(Debug, Clone)]
pub struct WorkSteal {
    /// Seed of the backoff schedule and the steal probe order.
    pub seed: u64,
    /// When false, workers never steal: a drained worker spins until
    /// the batch ends. Measurement ablation only — it wastes the idle
    /// cores that stealing exists to fill.
    pub stealing: bool,
}

impl WorkSteal {
    /// A stealing policy with the default seed.
    pub fn new(seed: u64) -> Self {
        WorkSteal {
            seed,
            stealing: true,
        }
    }

    /// Disables stealing (the bench ablation baseline).
    pub fn without_stealing(mut self) -> Self {
        self.stealing = false;
        self
    }
}

impl Default for WorkSteal {
    fn default() -> Self {
        WorkSteal::new(0x006a_616e_7573)
    }
}

impl SchedulePolicy for WorkSteal {
    fn name(&self) -> &'static str {
        "steal"
    }

    fn bind(&self, tasks: usize, workers: usize) -> Box<dyn TaskSource> {
        let workers = workers.max(1);
        let mut queues: Vec<Vec<usize>> = vec![Vec::new(); workers];
        for task in 0..tasks {
            queues[task % workers].push(task);
        }
        Box::new(LaneSource::new(queues, self.seed, 0, self.stealing))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    fn hot_source(tasks: usize, workers: usize, stealing: bool) -> LaneSource {
        // Everything routed to lane 0: the pathological hot queue.
        let mut queues = vec![Vec::new(); workers];
        queues[0] = (0..tasks).collect();
        LaneSource::new(queues, 7, 0, stealing)
    }

    #[test]
    fn owner_pops_front_in_order() {
        let src = hot_source(4, 2, true);
        let order: Vec<usize> = (0..4).map(|_| src.next_task(0).unwrap().task).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(src.next_task(0), None);
        assert_eq!(src.stats().steal.batches, 0);
    }

    #[test]
    fn thief_takes_half_and_stages_the_rest() {
        let src = hot_source(32, 2, true);
        let d = src.next_task(1).expect("steal succeeds");
        assert_eq!(d.stolen, 16, "half of 32");
        assert_eq!(d.task, 16, "back half starts at 16, smallest first");
        // The staged remainder serves the thief's next pops locally.
        for expect in 17..32 {
            let d = src.next_task(1).unwrap();
            assert_eq!((d.task, d.stolen), (expect, 0));
        }
        let stats = src.stats();
        assert_eq!(stats.steal.batches, 1);
        assert_eq!(stats.steal.stolen_tasks, 16);
        assert_eq!(stats.affinity_steals, 16, "batch + 15 stash pops");
        assert_eq!(stats.steal.queue_depth.max(), 32, "depth seen at steal");
    }

    #[test]
    fn batch_steals_need_logarithmic_traffic() {
        // Regression for the one-task-per-probe scheme: draining a hot
        // queue of 32 from a single thief must cost O(log n) steal
        // operations, not one per task.
        let src = hot_source(32, 2, true);
        let mut got = Vec::new();
        while let Some(d) = src.next_task(1) {
            got.push(d.task);
        }
        got.sort_unstable();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
        let stats = src.stats();
        assert!(
            stats.steal.batches <= 8,
            "halving steals drain 32 tasks in ≤8 batches, got {}",
            stats.steal.batches
        );
        assert_eq!(stats.dispatched, 32);
    }

    #[test]
    fn stashes_are_stealable_too() {
        // Thief 1 steals half of lane 0's queue into its stash; once the
        // owner drains its remaining span, the stash is the only (and
        // longest) structure left, so thief 2 halves the stash itself.
        let src = hot_source(32, 3, true);
        let d1 = src.next_task(1).unwrap();
        assert_eq!(d1.stolen, 16, "thief 1 takes the back half");
        let mut got: Vec<usize> = vec![d1.task];
        for _ in 0..16 {
            got.push(src.next_task(0).unwrap().task);
        }
        let d2 = src.next_task(2).unwrap();
        assert!(d2.stolen > 1, "thief 2 steals a batch from the stash");
        assert!(d2.task > d1.task, "stolen ranges keep ascending order");
        got.push(d2.task);
        for w in [0, 1, 2] {
            while let Some(d) = src.next_task(w) {
                got.push(d.task);
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn no_steal_mode_keeps_lanes_private() {
        let src = Arc::new(hot_source(6, 2, false));
        // Worker 1 spins until the owner drains everything, then None.
        let thief = {
            let src = Arc::clone(&src);
            std::thread::spawn(move || src.next_task(1))
        };
        let mut got = Vec::new();
        while let Some(d) = src.next_task(0) {
            assert_eq!(d.stolen, 0);
            got.push(d.task);
        }
        assert_eq!(got, (0..6).collect::<Vec<_>>());
        assert_eq!(thief.join().unwrap(), None);
        assert_eq!(src.stats().steal.attempts, 0);
    }

    #[test]
    fn concurrent_workers_dispatch_each_task_exactly_once() {
        for round in 0..16 {
            let workers = 4;
            let tasks = 257;
            let mut queues = vec![Vec::new(); workers];
            // Skewed: ~3/4 of tasks on lane 0, remainder spread.
            for t in 0..tasks {
                let lane = if t % 4 != 3 { 0 } else { 1 + (t % 3) };
                queues[lane].push(t);
            }
            let src = Arc::new(LaneSource::new(queues, round, 0, true));
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let src = Arc::clone(&src);
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Some(d) = src.next_task(w) {
                            got.push(d.task);
                        }
                        got
                    })
                })
                .collect();
            let mut all: Vec<usize> = Vec::new();
            for h in handles {
                all.extend(h.join().unwrap());
            }
            assert_eq!(all.len(), tasks, "no loss, no duplication");
            let distinct: HashSet<usize> = all.iter().copied().collect();
            assert_eq!(distinct.len(), tasks);
            assert_eq!(src.stats().dispatched, tasks as u64);
        }
    }

    #[test]
    fn probe_order_is_deterministic_per_seed() {
        let a = LaneSource::new(vec![vec![], vec![], vec![], vec![]], 42, 0, true);
        let b = LaneSource::new(vec![vec![], vec![], vec![], vec![]], 42, 0, true);
        let c = LaneSource::new(vec![vec![], vec![], vec![], vec![]], 43, 0, true);
        assert_eq!(a.probes, b.probes, "same seed, same scan order");
        assert_ne!(a.probes, c.probes, "seed varies the order");
        for (me, order) in a.probes.iter().enumerate() {
            assert!(!order.contains(&me), "never probes itself");
            assert_eq!(order.len(), 3);
        }
    }

    #[test]
    fn parks_with_work_counts_queued_exposure() {
        let src = hot_source(8, 2, true);
        src.on_park(0);
        src.on_park(1);
        src.on_unpark(0);
        assert_eq!(
            src.stats().steal.parks_with_work,
            1,
            "only the loaded lane parked with work"
        );
    }

    #[test]
    fn worksteal_policy_round_robins_and_drains() {
        let policy = WorkSteal::new(9);
        assert_eq!(policy.name(), "steal");
        let src = policy.bind(10, 3);
        let mut got = Vec::new();
        let mut idle = 0;
        while idle < 3 {
            idle = 0;
            for w in 0..3 {
                match src.next_task(w) {
                    Some(d) => got.push(d.task),
                    None => idle += 1,
                }
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
