//! The pluggable scheduling policy and its per-run task source.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::backoff::BackoffHint;
use crate::stats::SchedStats;

/// A scheduling strategy. A policy is run-independent configuration; at
/// the start of each run the runtime calls [`SchedulePolicy::bind`] to
/// obtain the shared mutable state ([`TaskSource`]) its workers
/// dispatch through, so one `Janus` instance can be reused across runs.
pub trait SchedulePolicy: Send + Sync + std::fmt::Debug {
    /// The policy's stable label ("fifo", "backoff", "affinity").
    fn name(&self) -> &'static str;

    /// Binds the policy to one run over `tasks` tasks executed by
    /// `workers` worker threads.
    fn bind(&self, tasks: usize, workers: usize) -> Box<dyn TaskSource>;
}

/// One dispatched task plus how it reached the worker.
///
/// Sources that steal report the batch size of the transfer that served
/// the dispatch, so the runtime can surface steal traffic in the trace
/// without the source needing a recorder handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatch {
    /// Index of the task to run.
    pub task: usize,
    /// Tasks transferred by the steal that served this dispatch (the
    /// dispatched task plus everything staged for later pops); 0 when
    /// the task came from the worker's own queue or stash.
    pub stolen: u64,
}

impl Dispatch {
    /// A dispatch served from the worker's own queue.
    pub fn own(task: usize) -> Self {
        Dispatch { task, stolen: 0 }
    }
}

/// One run's dispatch state, shared by every worker thread.
pub trait TaskSource: Send + Sync {
    /// The next task for worker `worker`, or `None` when the pool is
    /// drained for that worker (all sources guarantee global progress:
    /// `None` is only returned once no unstarted task remains).
    fn next_task(&self, worker: usize) -> Option<Dispatch>;

    /// Reports that `worker`'s attempt of `task` aborted for the
    /// `attempt`-th consecutive time (0-based) and returns how long the
    /// worker should wait before re-executing. The runtime performs the
    /// wait (so policies stay pure and deterministic) and records it.
    fn on_abort(&self, worker: usize, task: usize, attempt: u32) -> BackoffHint;

    /// Reports that `worker` committed `task`.
    fn on_commit(&self, _worker: usize, _task: usize) {}

    /// Reports that `worker` is about to block (gate park, ordered-turn
    /// wait, or a backoff sleep). Stealing sources use this to note
    /// whether the worker parks with undispatched work still queued —
    /// such work is always published for stealing, so the hook is a
    /// statistic, not a correctness requirement.
    fn on_park(&self, _worker: usize) {}

    /// Reports that `worker` resumed after an [`on_park`](Self::on_park).
    fn on_unpark(&self, _worker: usize) {}

    /// The source's scheduling counters so far.
    fn stats(&self) -> SchedStats;
}

/// The seed scheduler, preserved bit for bit: tasks are dispensed from
/// a single shared atomic counter in submission order, and aborted
/// attempts retry immediately.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl SchedulePolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn bind(&self, tasks: usize, _workers: usize) -> Box<dyn TaskSource> {
        Box::new(FifoSource {
            next: AtomicUsize::new(0),
            total: tasks,
        })
    }
}

struct FifoSource {
    next: AtomicUsize,
    total: usize,
}

impl TaskSource for FifoSource {
    fn next_task(&self, _worker: usize) -> Option<Dispatch> {
        // The seed runtime's dispatch, verbatim: one Relaxed fetch_add.
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.total).then(|| Dispatch::own(i))
    }

    fn on_abort(&self, _worker: usize, _task: usize, _attempt: u32) -> BackoffHint {
        BackoffHint::none()
    }

    fn stats(&self) -> SchedStats {
        SchedStats {
            dispatched: self.next.load(Ordering::Relaxed).min(self.total) as u64,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_dispenses_in_submission_order() {
        let source = Fifo.bind(4, 8);
        assert_eq!(source.next_task(3), Some(Dispatch::own(0)));
        assert_eq!(source.next_task(0), Some(Dispatch::own(1)));
        assert_eq!(source.next_task(7), Some(Dispatch::own(2)));
        assert_eq!(source.next_task(1), Some(Dispatch::own(3)));
        assert_eq!(source.next_task(0), None);
        assert_eq!(source.next_task(0), None, "drained stays drained");
        assert_eq!(source.stats().dispatched, 4);
    }

    #[test]
    fn fifo_never_backs_off() {
        let source = Fifo.bind(2, 1);
        for attempt in 0..10 {
            assert_eq!(source.on_abort(0, 1, attempt), BackoffHint::none());
        }
        assert_eq!(source.stats().backoff_waits, 0);
    }
}
