//! The pluggable scheduling policy and its per-run task source.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::backoff::BackoffHint;
use crate::stats::SchedStats;

/// A scheduling strategy. A policy is run-independent configuration; at
/// the start of each run the runtime calls [`SchedulePolicy::bind`] to
/// obtain the shared mutable state ([`TaskSource`]) its workers
/// dispatch through, so one `Janus` instance can be reused across runs.
pub trait SchedulePolicy: Send + Sync + std::fmt::Debug {
    /// The policy's stable label ("fifo", "backoff", "affinity").
    fn name(&self) -> &'static str;

    /// Binds the policy to one run over `tasks` tasks executed by
    /// `workers` worker threads.
    fn bind(&self, tasks: usize, workers: usize) -> Box<dyn TaskSource>;
}

/// One run's dispatch state, shared by every worker thread.
pub trait TaskSource: Send + Sync {
    /// The next task for worker `worker`, or `None` when the pool is
    /// drained for that worker (all sources guarantee global progress:
    /// `None` is only returned once no unstarted task remains).
    fn next_task(&self, worker: usize) -> Option<usize>;

    /// Reports that `worker`'s attempt of `task` aborted for the
    /// `attempt`-th consecutive time (0-based) and returns how long the
    /// worker should wait before re-executing. The runtime performs the
    /// wait (so policies stay pure and deterministic) and records it.
    fn on_abort(&self, worker: usize, task: usize, attempt: u32) -> BackoffHint;

    /// Reports that `worker` committed `task`.
    fn on_commit(&self, _worker: usize, _task: usize) {}

    /// The source's scheduling counters so far.
    fn stats(&self) -> SchedStats;
}

/// The seed scheduler, preserved bit for bit: tasks are dispensed from
/// a single shared atomic counter in submission order, and aborted
/// attempts retry immediately.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl SchedulePolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn bind(&self, tasks: usize, _workers: usize) -> Box<dyn TaskSource> {
        Box::new(FifoSource {
            next: AtomicUsize::new(0),
            total: tasks,
        })
    }
}

struct FifoSource {
    next: AtomicUsize,
    total: usize,
}

impl TaskSource for FifoSource {
    fn next_task(&self, _worker: usize) -> Option<usize> {
        // The seed runtime's dispatch, verbatim: one Relaxed fetch_add.
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.total).then_some(i)
    }

    fn on_abort(&self, _worker: usize, _task: usize, _attempt: u32) -> BackoffHint {
        BackoffHint::none()
    }

    fn stats(&self) -> SchedStats {
        SchedStats {
            dispatched: self.next.load(Ordering::Relaxed).min(self.total) as u64,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_dispenses_in_submission_order() {
        let source = Fifo.bind(4, 8);
        assert_eq!(source.next_task(3), Some(0));
        assert_eq!(source.next_task(0), Some(1));
        assert_eq!(source.next_task(7), Some(2));
        assert_eq!(source.next_task(1), Some(3));
        assert_eq!(source.next_task(0), None);
        assert_eq!(source.next_task(0), None, "drained stays drained");
        assert_eq!(source.stats().dispatched, 4);
    }

    #[test]
    fn fifo_never_backs_off() {
        let source = Fifo.bind(2, 1);
        for attempt in 0..10 {
            assert_eq!(source.on_abort(0, 1, attempt), BackoffHint::none());
        }
        assert_eq!(source.stats().backoff_waits, 0);
    }
}
