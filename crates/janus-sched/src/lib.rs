//! Contention-aware scheduling for the JANUS runtime.
//!
//! The protocol of Figure 7 dispenses tasks with a bare counter and
//! re-runs every aborted attempt immediately from scratch. That is the
//! right policy when conflicts are rare — the regime sequence-based
//! detection creates — but under genuine contention it livelocks the
//! runtime on exactly the workloads the paper targets: every worker
//! re-executes against the same hot location, loses the commit race,
//! and pays the full re-execution again. Transaction-repair systems
//! show that once optimistic validation starts failing, the *retry
//! policy* (not the detector) dominates throughput.
//!
//! This crate supplies the missing policy layer:
//!
//! * [`SchedulePolicy`] — a pluggable strategy, bound per run to a
//!   [`TaskSource`] the workers dispatch through.
//!   * [`Fifo`] — the seed behavior, bit for bit: a shared atomic
//!     counter, immediate retry on abort.
//!   * [`Backoff`] — per-task randomized exponential backoff with a
//!     deterministic seeded RNG: an aborted attempt waits a bounded,
//!     reproducible number of yield/park steps before re-executing,
//!     ceding its core to workers that can still make progress.
//!   * [`Affinity`] — routes tasks to workers by predicted footprint
//!     overlap (the read/write sets the trainer already mines), so
//!     likely-conflicting tasks serialize on one worker's queue instead
//!     of aborting against each other. Idle workers steal half the
//!     longest queue in one lock-free batch, so routing never strands
//!     work (see [`steal`] for the deque protocol).
//!   * [`WorkSteal`] — the footprint-free variant of the same lanes:
//!     round-robin placement plus batch stealing; also the ablation
//!     handle benches use to measure stealing itself.
//! * [`DegradeController`] — an abort-rate feedback loop: when the
//!   windowed retry ratio crosses a threshold, retries of tasks that
//!   touched the hot location classes must hold a serial token while
//!   they re-execute, collapsing the hot set to sequential execution
//!   (never wrong, bounded worst case); the window keeps accumulating
//!   and parallelism re-opens as soon as it cools.
//! * [`backoff::wait`] / [`Parker`] — the spin→yield→park primitive
//!   shared by the backoff policy and the ordered-commit wait (which
//!   previously burned a core in a `yield_now` loop).
//!
//! Everything here is deterministic given its inputs: backoff waits are
//! a pure function of `(seed, task, attempt)`, affinity partitions are
//! a pure function of the predicted footprints, and `Fifo` preserves
//! the seed scheduler exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affinity;
pub mod backoff;
mod degrade;
mod policy;
mod stats;
pub mod steal;

pub use affinity::{
    Affinity, ExactFootprints, FootprintPredictor, ShardFootprints, TrainedFootprints,
};
pub use backoff::{Backoff, BackoffHint, Parker};
pub use degrade::{DegradeConfig, DegradeController, SerialGuard};
pub use policy::{Dispatch, Fifo, SchedulePolicy, TaskSource};
pub use stats::{SchedStats, StealStats};
pub use steal::WorkSteal;
