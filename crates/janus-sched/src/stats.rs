//! Scheduler counters, absorbed by the unified metrics registry.

/// Monotone counters describing what the scheduler did during one run.
///
/// Populated by the bound [`TaskSource`](crate::TaskSource) and, when
/// degradation is enabled, merged with the
/// [`DegradeController`](crate::DegradeController)'s counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Tasks handed to workers (every task exactly once).
    pub dispatched: u64,
    /// Aborted attempts that waited a non-zero backoff before retrying.
    pub backoff_waits: u64,
    /// Total backoff steps waited across all retries (one step is one
    /// spin/yield/park unit of [`backoff::wait`](crate::backoff::wait)).
    pub backoff_steps: u64,
    /// Tasks served to a worker from its own affinity queue.
    pub affinity_hits: u64,
    /// Tasks an idle worker stole from another worker's queue.
    pub affinity_steals: u64,
    /// Tasks the affinity partitioner placed by footprint overlap (the
    /// rest were placed by load balance alone).
    pub affinity_routed: u64,
    /// Feedback windows that closed in (or entered) the degraded state.
    pub degrade_windows: u64,
    /// Retries that re-executed while holding the serial token.
    pub serial_retries: u64,
}

impl janus_obs::Snapshot for SchedStats {
    fn source(&self) -> &'static str {
        "sched"
    }

    fn counters(&self) -> Vec<(String, u64)> {
        vec![
            ("dispatched".to_string(), self.dispatched),
            ("backoff_waits".to_string(), self.backoff_waits),
            ("backoff_steps".to_string(), self.backoff_steps),
            ("affinity_hits".to_string(), self.affinity_hits),
            ("affinity_steals".to_string(), self.affinity_steals),
            ("affinity_routed".to_string(), self.affinity_routed),
            ("degrade_windows".to_string(), self.degrade_windows),
            ("serial_retries".to_string(), self.serial_retries),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_obs::Snapshot;

    #[test]
    fn snapshot_exposes_every_counter() {
        let stats = SchedStats {
            dispatched: 3,
            backoff_waits: 2,
            ..Default::default()
        };
        assert_eq!(stats.source(), "sched");
        let counters = stats.counters();
        assert_eq!(counters.len(), 8);
        assert!(counters.contains(&("dispatched".to_string(), 3)));
        assert!(counters.contains(&("backoff_waits".to_string(), 2)));
    }
}
