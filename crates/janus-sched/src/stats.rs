//! Scheduler counters, absorbed by the unified metrics registry.

use janus_obs::Histogram;

/// Work-stealing traffic for one run: how often workers probed for
/// victims, how much work moved, and whether parked workers still held
/// queued tasks (always published for stealing, so `parks_with_work`
/// measures exposure, not loss).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Steal probe rounds (victim scans), successful or not.
    pub attempts: u64,
    /// Successful steals (each transfers a batch of tasks).
    pub batches: u64,
    /// Tasks transferred by steals. A task re-stolen from a thief's
    /// stash counts once per transfer, so this can exceed the task
    /// count under heavy contention.
    pub stolen_tasks: u64,
    /// Times a worker parked (gate, ordered turn, or backoff) while its
    /// own queue or stash still held undispatched tasks.
    pub parks_with_work: u64,
    /// Victim queue depth observed at each successful steal.
    pub queue_depth: Histogram,
}

impl StealStats {
    /// Folds another run's steal counters into this one.
    pub fn merge(&mut self, other: &StealStats) {
        self.attempts += other.attempts;
        self.batches += other.batches;
        self.stolen_tasks += other.stolen_tasks;
        self.parks_with_work += other.parks_with_work;
        self.queue_depth.merge(&other.queue_depth);
    }
}

impl janus_obs::Snapshot for StealStats {
    fn source(&self) -> &'static str {
        "steal"
    }

    fn counters(&self) -> Vec<(String, u64)> {
        vec![
            ("attempts".to_string(), self.attempts),
            ("batches".to_string(), self.batches),
            ("stolen_tasks".to_string(), self.stolen_tasks),
            ("parks_with_work".to_string(), self.parks_with_work),
        ]
    }
}

/// Monotone counters describing what the scheduler did during one run.
///
/// Populated by the bound [`TaskSource`](crate::TaskSource) and, when
/// degradation is enabled, merged with the
/// [`DegradeController`](crate::DegradeController)'s counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Tasks handed to workers (every task exactly once).
    pub dispatched: u64,
    /// Aborted attempts that waited a non-zero backoff before retrying.
    pub backoff_waits: u64,
    /// Total backoff steps waited across all retries (one step is one
    /// spin/yield/park unit of [`backoff::wait`](crate::backoff::wait)).
    pub backoff_steps: u64,
    /// Tasks served to a worker from its own affinity queue.
    pub affinity_hits: u64,
    /// Tasks an idle worker stole from another worker's queue.
    pub affinity_steals: u64,
    /// Tasks the affinity partitioner placed by footprint overlap (the
    /// rest were placed by load balance alone).
    pub affinity_routed: u64,
    /// Feedback windows that closed in (or entered) the degraded state.
    pub degrade_windows: u64,
    /// Retries that re-executed while holding the serial token.
    pub serial_retries: u64,
    /// Work-stealing traffic (zero for non-stealing sources). Exposed
    /// to the metrics registry as its own `steal.*` snapshot.
    pub steal: StealStats,
}

impl janus_obs::Snapshot for SchedStats {
    fn source(&self) -> &'static str {
        "sched"
    }

    fn counters(&self) -> Vec<(String, u64)> {
        vec![
            ("dispatched".to_string(), self.dispatched),
            ("backoff_waits".to_string(), self.backoff_waits),
            ("backoff_steps".to_string(), self.backoff_steps),
            ("affinity_hits".to_string(), self.affinity_hits),
            ("affinity_steals".to_string(), self.affinity_steals),
            ("affinity_routed".to_string(), self.affinity_routed),
            ("degrade_windows".to_string(), self.degrade_windows),
            ("serial_retries".to_string(), self.serial_retries),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_obs::Snapshot;

    #[test]
    fn snapshot_exposes_every_counter() {
        let stats = SchedStats {
            dispatched: 3,
            backoff_waits: 2,
            ..Default::default()
        };
        assert_eq!(stats.source(), "sched");
        let counters = stats.counters();
        assert_eq!(counters.len(), 8);
        assert!(counters.contains(&("dispatched".to_string(), 3)));
        assert!(counters.contains(&("backoff_waits".to_string(), 2)));
    }

    #[test]
    fn steal_snapshot_exposes_every_counter() {
        let stats = StealStats {
            attempts: 5,
            batches: 2,
            stolen_tasks: 7,
            parks_with_work: 1,
            ..Default::default()
        };
        assert_eq!(stats.source(), "steal");
        let counters = stats.counters();
        assert_eq!(counters.len(), 4);
        assert!(counters.contains(&("attempts".to_string(), 5)));
        assert!(counters.contains(&("stolen_tasks".to_string(), 7)));
    }

    #[test]
    fn steal_stats_merge_folds_counters_and_depths() {
        let mut a = StealStats {
            attempts: 1,
            batches: 1,
            stolen_tasks: 4,
            ..Default::default()
        };
        a.queue_depth.observe(8);
        let mut b = StealStats {
            attempts: 2,
            parks_with_work: 3,
            ..Default::default()
        };
        b.queue_depth.observe(2);
        a.merge(&b);
        assert_eq!(a.attempts, 3);
        assert_eq!(a.batches, 1);
        assert_eq!(a.stolen_tasks, 4);
        assert_eq!(a.parks_with_work, 3);
        assert_eq!(a.queue_depth.count(), 2);
        assert_eq!(a.queue_depth.max(), 8);
    }
}
