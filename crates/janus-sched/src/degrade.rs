//! Serial-fallback degradation: an abort-rate feedback loop.
//!
//! Optimistic execution has an unbounded worst case: a pathological
//! workload can abort every attempt many times, running *slower* than
//! sequential while burning every core. The controller below bounds it.
//! Attempt outcomes stream into a fixed-size window; when the window's
//! retry ratio crosses the configured threshold, the controller marks
//! the location classes responsible for most of the window's aborts as
//! *hot* and degrades: a retry of a task that touched a hot class must
//! hold the serial token while it re-executes, so the hot set collapses
//! to sequential execution (first attempts stay optimistic, and tasks
//! off the hot classes keep running in parallel). The window keeps
//! accumulating; as soon as a window closes below the threshold the hot
//! set is cleared and full parallelism re-opens.
//!
//! Degraded execution is never wrong — it only removes concurrency —
//! and the worst case is bounded by one wasted optimistic attempt per
//! task plus the sequential execution of the hot set.

use std::collections::BTreeMap;

use janus_log::ClassId;
use parking_lot::{Mutex, MutexGuard};

/// Configuration of the degradation feedback loop.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradeConfig {
    /// Attempts per feedback window.
    pub window: u64,
    /// Windowed retry ratio (aborts / attempts) at or above which the
    /// scheduler degrades.
    pub threshold: f64,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            window: 32,
            threshold: 0.5,
        }
    }
}

/// Proof that the holder may run a degraded retry: a lock on the serial
/// token. Dropping it re-admits the next degraded retry.
pub type SerialGuard<'a> = MutexGuard<'a, ()>;

#[derive(Debug, Default)]
struct Window {
    attempts: u64,
    aborts: u64,
    class_aborts: BTreeMap<ClassId, u64>,
}

#[derive(Debug, Default)]
struct State {
    current: Window,
    /// Classes whose retries serialize; empty when fully parallel.
    hot: Vec<ClassId>,
    degraded: bool,
    degrade_windows: u64,
}

/// The abort-rate feedback controller. One per run; shared by all
/// workers. All methods are cheap relative to the attempt they follow
/// (one short mutex hold), and a disabled controller is simply absent.
#[derive(Debug)]
pub struct DegradeController {
    config: DegradeConfig,
    state: Mutex<State>,
    token: Mutex<()>,
    serial_retries: std::sync::atomic::AtomicU64,
}

impl DegradeController {
    /// A controller in the fully-parallel state.
    pub fn new(config: DegradeConfig) -> Self {
        assert!(config.window >= 1, "degradation window must be positive");
        assert!(
            (0.0..=f64::MAX).contains(&config.threshold),
            "degradation threshold must be non-negative"
        );
        DegradeController {
            config,
            state: Mutex::new(State::default()),
            token: Mutex::new(()),
            serial_retries: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Records one attempt outcome. `classes` are the location classes
    /// the attempt touched (consulted only for aborts). Returns
    /// `Some(on)` when the feedback loop flipped the degradation state.
    pub fn record(&self, classes: &[ClassId], aborted: bool) -> Option<bool> {
        let mut s = self.state.lock();
        s.current.attempts += 1;
        if aborted {
            s.current.aborts += 1;
            for class in classes {
                *s.current.class_aborts.entry(class.clone()).or_insert(0) += 1;
            }
        }
        if s.current.attempts < self.config.window {
            return None;
        }
        // The window is full: decide, then start the next window.
        let window = std::mem::take(&mut s.current);
        let ratio = window.aborts as f64 / window.attempts as f64;
        let was = s.degraded;
        if ratio >= self.config.threshold && window.aborts > 0 {
            // Degrade the classes carrying at least a quarter of the
            // window's aborts; if attribution is too diffuse to name
            // any, degrade globally (empty hot set = every retry).
            let cut = (window.aborts / 4).max(1);
            s.hot = window
                .class_aborts
                .iter()
                .filter(|(_, &n)| n >= cut)
                .map(|(c, _)| c.clone())
                .collect();
            s.degraded = true;
            s.degrade_windows += 1;
        } else {
            s.degraded = false;
            s.hot.clear();
        }
        (was != s.degraded).then_some(s.degraded)
    }

    /// Whether the controller is currently degraded.
    pub fn is_degraded(&self) -> bool {
        self.state.lock().degraded
    }

    /// The currently-hot classes (empty also when fully parallel —
    /// check [`DegradeController::is_degraded`] to distinguish a global
    /// degrade from no degrade).
    pub fn hot_classes(&self) -> Vec<ClassId> {
        self.state.lock().hot.clone()
    }

    /// Called before re-executing an aborted attempt that touched
    /// `classes`: when degraded and the attempt intersects the hot set
    /// (or the hot set is global), blocks until the serial token is
    /// free and returns the guard; the retry then runs serialized
    /// against every other degraded retry. Returns `None` while fully
    /// parallel.
    pub fn serial_guard(&self, classes: &[ClassId]) -> Option<SerialGuard<'_>> {
        {
            let s = self.state.lock();
            if !s.degraded {
                return None;
            }
            if !s.hot.is_empty() && !classes.iter().any(|c| s.hot.contains(c)) {
                return None;
            }
            // The state lock is released before taking the token, so a
            // long serial retry never blocks outcome recording.
        }
        self.serial_retries
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Some(self.token.lock())
    }

    /// Takes the serial token unconditionally, regardless of the
    /// degradation state — the retry-budget escalation path: a task that
    /// exhausted its conflict-abort budget re-executes under the token
    /// so it cannot be starved by the contenders that aborted it.
    /// Counted as a serial retry like any other token hold.
    pub fn force_guard(&self) -> SerialGuard<'_> {
        self.serial_retries
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.token.lock()
    }

    /// Folds the controller's counters into scheduler stats.
    pub fn merge_into(&self, stats: &mut crate::SchedStats) {
        let s = self.state.lock();
        stats.degrade_windows += s.degrade_windows;
        stats.serial_retries += self
            .serial_retries
            .load(std::sync::atomic::Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes(labels: &[&str]) -> Vec<ClassId> {
        labels.iter().map(ClassId::new).collect()
    }

    #[test]
    fn quiet_windows_stay_parallel() {
        let c = DegradeController::new(DegradeConfig {
            window: 4,
            threshold: 0.5,
        });
        for _ in 0..16 {
            assert_eq!(c.record(&[], false), None);
        }
        assert!(!c.is_degraded());
        assert!(c.serial_guard(&classes(&["hot"])).is_none());
    }

    #[test]
    fn hot_window_degrades_the_responsible_class_then_cools() {
        let c = DegradeController::new(DegradeConfig {
            window: 4,
            threshold: 0.5,
        });
        let hot = classes(&["hot"]);
        let cold = classes(&["cold"]);
        // 3 aborts on "hot" + 1 commit: ratio 0.75 >= 0.5.
        c.record(&hot, true);
        c.record(&hot, true);
        c.record(&hot, true);
        assert_eq!(c.record(&cold, false), Some(true), "window flips on");
        assert!(c.is_degraded());
        assert_eq!(c.hot_classes(), hot);
        // Hot retries serialize; cold retries do not.
        assert!(c.serial_guard(&hot).is_some());
        assert!(c.serial_guard(&cold).is_none());
        // A clean window re-opens parallelism.
        for _ in 0..3 {
            assert_eq!(c.record(&hot, false), None);
        }
        assert_eq!(c.record(&hot, false), Some(false), "window flips off");
        assert!(!c.is_degraded());
        assert!(c.serial_guard(&hot).is_none());

        let mut stats = crate::SchedStats::default();
        c.merge_into(&mut stats);
        assert_eq!(stats.degrade_windows, 1);
        assert_eq!(stats.serial_retries, 1);
    }

    #[test]
    fn diffuse_aborts_degrade_globally() {
        let c = DegradeController::new(DegradeConfig {
            window: 2,
            threshold: 0.5,
        });
        // Aborts with no class attribution at all.
        c.record(&[], true);
        assert_eq!(c.record(&[], true), Some(true));
        assert!(c.is_degraded());
        assert!(c.hot_classes().is_empty());
        // Global hot set: every retry serializes.
        assert!(c.serial_guard(&classes(&["anything"])).is_some());
        assert!(c.serial_guard(&[]).is_some());
    }

    #[test]
    fn force_guard_bypasses_the_feedback_state() {
        let c = DegradeController::new(DegradeConfig::default());
        assert!(!c.is_degraded());
        assert!(c.serial_guard(&classes(&["x"])).is_none());
        // Escalation takes the token even while fully parallel.
        let g = c.force_guard();
        drop(g);
        let mut stats = crate::SchedStats::default();
        c.merge_into(&mut stats);
        assert_eq!(stats.serial_retries, 1);
    }

    #[test]
    fn token_serializes_holders() {
        let c = DegradeController::new(DegradeConfig {
            window: 1,
            threshold: 0.1,
        });
        c.record(&[], true);
        assert!(c.is_degraded());
        let g = c.serial_guard(&[]).expect("degraded");
        // While held, the token mutex is exclusive; just verify the
        // guard releases cleanly and a second acquisition succeeds.
        drop(g);
        assert!(c.serial_guard(&[]).is_some());
    }
}
