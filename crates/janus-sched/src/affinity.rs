//! Conflict-affinity routing: likely-conflicting tasks share a worker.
//!
//! Two transactions only abort against each other when they overlap in
//! time *and* in footprint. The detector attacks the footprint axis;
//! affinity routing attacks the time axis: if every task predicted to
//! touch a hot location runs on the same worker, those tasks serialize
//! naturally — without aborting — while disjoint tasks fill the other
//! workers. Predictions come from the same place as the commutativity
//! conditions: the read/write sets mined from a sequential (training or
//! hindsight) run.

use std::sync::Arc;

use janus_train::TrainingRun;

use crate::policy::{SchedulePolicy, TaskSource};
use crate::steal::LaneSource;

/// Predicts the shared-state footprint of a task before it runs.
pub trait FootprintPredictor: Send + Sync + std::fmt::Debug {
    /// Footprint keys (location or class identities — any stable `u64`
    /// encoding) task `task` is expected to touch. Tasks with
    /// overlapping keys are routed to the same worker. An empty
    /// prediction means "route by load balance alone".
    fn footprint(&self, task: usize) -> Vec<u64>;
}

/// A literal per-task footprint table.
#[derive(Debug, Clone, Default)]
pub struct ExactFootprints(pub Vec<Vec<u64>>);

impl FootprintPredictor for ExactFootprints {
    fn footprint(&self, task: usize) -> Vec<u64> {
        self.0.get(task).cloned().unwrap_or_default()
    }
}

/// Footprints mined from a sequential run's per-task operation logs —
/// the read/write sets the trainer already extracts (§5.1). When the
/// production tasks are the ones profiled (hindsight scheduling) the
/// prediction is exact; when they merely share location classes with
/// the profiled run, it is a heuristic.
#[derive(Debug, Clone, Default)]
pub struct TrainedFootprints {
    keys: Vec<Vec<u64>>,
}

impl TrainedFootprints {
    /// Mines each task's distinct touched locations from the run.
    pub fn from_training_run(run: &TrainingRun) -> Self {
        let keys = run
            .task_logs
            .iter()
            .map(|log| {
                let mut locs: Vec<u64> = log.iter().map(|op| op.loc.0).collect();
                locs.sort_unstable();
                locs.dedup();
                locs
            })
            .collect();
        TrainedFootprints { keys }
    }
}

impl FootprintPredictor for TrainedFootprints {
    fn footprint(&self, task: usize) -> Vec<u64> {
        self.keys.get(task).cloned().unwrap_or_default()
    }
}

/// Coarsens another predictor's location keys to *shard* identities: key
/// `k` becomes `LocId(k).shard(n)`. With the sharded runtime, two tasks
/// conflict on the store's commit path only when they touch the same
/// shard, so routing at shard granularity serializes exactly the tasks
/// that would contend for the same shard locks — a coarser but cheaper
/// signal than exact location overlap (and one that matches what the
/// commit path actually locks).
#[derive(Debug, Clone)]
pub struct ShardFootprints {
    inner: Arc<dyn FootprintPredictor>,
    shards: usize,
}

impl ShardFootprints {
    /// Wraps `inner`, folding its keys onto `shards` shards (must match
    /// the runtime's `Janus::shards` setting for the signal to be exact).
    pub fn new(inner: Arc<dyn FootprintPredictor>, shards: usize) -> Self {
        ShardFootprints {
            inner,
            shards: shards.max(1),
        }
    }
}

impl FootprintPredictor for ShardFootprints {
    fn footprint(&self, task: usize) -> Vec<u64> {
        let mut shards: Vec<u64> = self
            .inner
            .footprint(task)
            .into_iter()
            .map(|k| janus_log::LocId(k).shard(self.shards) as u64)
            .collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }
}

/// Routes tasks to workers by predicted footprint overlap, with
/// lock-free batch work stealing for liveness (see
/// [`steal`](crate::steal) for the deque protocol). Aborts (which
/// still happen when predictions miss or stealing mixes footprints)
/// back off on the same deterministic curve as
/// [`Backoff`](crate::Backoff).
#[derive(Debug, Clone)]
pub struct Affinity {
    /// The footprint oracle driving placement.
    pub predictor: Arc<dyn FootprintPredictor>,
    /// Seed of the retry-backoff schedule and steal probe order.
    pub seed: u64,
    /// Whether idle workers steal from loaded ones (on by default;
    /// disabling is a measurement ablation, not a production mode).
    pub stealing: bool,
}

impl Affinity {
    /// An affinity policy over the given predictor, with the default
    /// backoff seed.
    pub fn new(predictor: Arc<dyn FootprintPredictor>) -> Self {
        Affinity {
            predictor,
            seed: 0x006a_616e_7573,
            stealing: true,
        }
    }

    /// Disables stealing (the bench ablation baseline).
    pub fn without_stealing(mut self) -> Self {
        self.stealing = false;
        self
    }
}

impl SchedulePolicy for Affinity {
    fn name(&self) -> &'static str {
        "affinity"
    }

    fn bind(&self, tasks: usize, workers: usize) -> Box<dyn TaskSource> {
        let workers = workers.max(1);
        let mut queues: Vec<Vec<usize>> = vec![Vec::new(); workers];
        let mut keys: Vec<Vec<u64>> = vec![Vec::new(); workers];
        let mut routed = 0u64;
        for task in 0..tasks {
            let fp = self.predictor.footprint(task);
            // Greedy placement: the worker sharing the most footprint
            // keys wins; ties (and empty predictions) go to the least
            // loaded worker. Deterministic given the predictor.
            let overlap = |w: usize| fp.iter().filter(|k| keys[w].contains(k)).count();
            let best = (0..workers)
                .max_by_key(|&w| (overlap(w), std::cmp::Reverse(queues[w].len())))
                .expect("at least one worker");
            if overlap(best) > 0 {
                routed += 1;
            }
            for k in &fp {
                if !keys[best].contains(k) {
                    keys[best].push(*k);
                }
            }
            queues[best].push(task);
        }
        // Dispatch and stealing are the shared lane protocol; placement
        // above is the only affinity-specific part.
        Box::new(LaneSource::new(queues, self.seed, routed, self.stealing))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact(table: &[&[u64]]) -> Arc<dyn FootprintPredictor> {
        Arc::new(ExactFootprints(
            table.iter().map(|fp| fp.to_vec()).collect(),
        ))
    }

    #[test]
    fn overlapping_tasks_share_a_worker() {
        // Tasks 0, 2, 4 overlap (locations 7/9); tasks 1, 3 are
        // disjoint. The chain must land on one worker's queue, the
        // disjoint tasks on the other's.
        let policy = Affinity::new(exact(&[&[7], &[1], &[7, 9], &[2], &[9]]));
        let source = policy.bind(5, 2);
        assert_eq!(
            source.stats().affinity_routed,
            2,
            "tasks 2 and 4 joined task 0"
        );
        // Each worker serves its own queue before stealing, so probing
        // worker 0 reveals which queue it owns; the hot chain {0, 2, 4}
        // must then drain in submission order from a single worker.
        let first = source.next_task(0).expect("five tasks queued").task;
        let (hot, cold, mut hot_tasks, mut cold_tasks) = if first == 0 {
            (0, 1, vec![0usize], vec![])
        } else {
            assert_eq!(first, 1, "worker 0 owns either chain head");
            (1, 0, vec![], vec![1usize])
        };
        while hot_tasks.len() < 3 {
            hot_tasks.push(source.next_task(hot).expect("hot queue has 3 tasks").task);
        }
        while cold_tasks.len() < 2 {
            cold_tasks.push(source.next_task(cold).expect("cold queue has 2 tasks").task);
        }
        assert_eq!(hot_tasks, vec![0, 2, 4], "the overlap chain serializes");
        assert_eq!(cold_tasks, vec![1, 3]);
        assert_eq!(source.stats().affinity_steals, 0, "no steal was needed");
        assert_eq!(source.next_task(hot), None);
    }

    #[test]
    fn every_task_is_dispensed_exactly_once() {
        let policy = Affinity::new(exact(&[&[1], &[1], &[2], &[], &[2], &[1, 2]]));
        let source = policy.bind(6, 3);
        let mut seen = Vec::new();
        // Round-robin the workers so stealing paths get exercised.
        let mut idle = 0;
        while idle < 3 {
            idle = 0;
            for w in 0..3 {
                match source.next_task(w) {
                    Some(d) => seen.push(d.task),
                    None => idle += 1,
                }
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        let stats = source.stats();
        assert_eq!(stats.affinity_hits + stats.affinity_steals, 6);
    }

    #[test]
    fn empty_predictions_balance_by_load() {
        let policy = Affinity::new(exact(&[&[], &[], &[], &[]]));
        let source = policy.bind(4, 2);
        // With no footprint signal, placement alternates by load: each
        // worker's own queue serves exactly two tasks.
        assert!(source.next_task(0).is_some());
        assert!(source.next_task(1).is_some());
        assert!(source.next_task(0).is_some());
        assert!(source.next_task(1).is_some());
        assert_eq!(source.stats().affinity_steals, 0);
        assert_eq!(source.stats().affinity_routed, 0);
    }

    #[test]
    fn shard_footprints_coarsen_keys_to_shards() {
        use janus_log::{ClassId, LocId, SHARD_BITS};

        // Two locations of one class (same shard hint, distinct ids) and
        // one of another class. At shard granularity the class mates
        // collapse to a single key.
        let hint_a = ClassId::new("queue").shard_hint();
        let hint_b = ClassId::new("stats").shard_hint();
        let loc = |counter: u64, hint: u64| (counter << SHARD_BITS) | hint;
        let exact = exact(&[&[loc(0, hint_a), loc(1, hint_a)], &[loc(2, hint_b)], &[]]);
        let shards = 8;
        let p = ShardFootprints::new(Arc::clone(&exact), shards);
        assert_eq!(
            p.footprint(0),
            vec![LocId(loc(0, hint_a)).shard(shards) as u64],
            "class mates share a shard key"
        );
        assert_eq!(
            p.footprint(1),
            vec![LocId(loc(2, hint_b)).shard(shards) as u64]
        );
        assert_eq!(p.footprint(2), Vec::<u64>::new());
        // Every key is a valid shard index.
        for task in 0..3 {
            for k in p.footprint(task) {
                assert!((k as usize) < shards);
            }
        }
        // The wrapped predictor composes with the affinity policy.
        let policy = Affinity::new(Arc::new(p));
        let source = policy.bind(3, 2);
        let mut seen: Vec<usize> = (0..3)
            .filter_map(|w| source.next_task(w).map(|d| d.task))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn trained_footprints_mine_distinct_locations() {
        use janus_log::{ClassId, LocId, Op, OpKind, ScalarOp};
        use janus_relational::Value;

        let mut v = Value::int(0);
        let op = |loc: u64, v: &mut Value| {
            Op::execute(
                LocId(loc),
                ClassId::new("work"),
                OpKind::Scalar(ScalarOp::Add(1)),
                v,
            )
            .0
        };
        let run = TrainingRun {
            initial: Default::default(),
            task_logs: vec![vec![op(3, &mut v), op(3, &mut v), op(1, &mut v)], vec![]],
        };
        let predictor = TrainedFootprints::from_training_run(&run);
        assert_eq!(predictor.footprint(0), vec![1, 3]);
        assert_eq!(predictor.footprint(1), Vec::<u64>::new());
        assert_eq!(predictor.footprint(9), Vec::<u64>::new(), "out of range");
    }
}
