//! Randomized exponential backoff and the shared waiting primitive.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use rand::{rngs::SmallRng, Rng, SeedableRng};

use crate::policy::{Dispatch, SchedulePolicy, TaskSource};
use crate::stats::SchedStats;

/// How long an aborted attempt should wait before re-executing, in
/// abstract steps consumed by [`wait`]. Zero means retry immediately
/// (the seed behavior).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffHint {
    /// Wait steps; one step is one spin/yield/park unit of [`wait`].
    pub steps: u64,
}

impl BackoffHint {
    /// An immediate retry (no waiting at all).
    pub fn none() -> Self {
        BackoffHint { steps: 0 }
    }
}

/// Waits for `steps` backoff units, escalating from busy spins through
/// scheduler yields to short parks, so long waits cede the core to
/// workers that can still make progress instead of hot-spinning.
/// `bail` is polled between units; when it returns true the wait ends
/// early (used to drain waiters out of poisoned runs).
pub fn wait(steps: u64, bail: impl Fn() -> bool) {
    for step in 0..steps {
        if bail() {
            return;
        }
        match step {
            0..=15 => std::hint::spin_loop(),
            16..=63 => std::thread::yield_now(),
            _ => std::thread::sleep(Duration::from_micros(50)),
        }
    }
}

/// A progressive waiting cell for condition loops (the ordered-commit
/// wait): spins briefly, then yields, then parks in short sleeps. One
/// `Parker` tracks a single wait; call [`Parker::reset`] after the
/// condition is met to reuse it.
#[derive(Debug, Default)]
pub struct Parker {
    rounds: u32,
}

impl Parker {
    /// A fresh parker, starting at the spinning stage.
    pub fn new() -> Self {
        Parker::default()
    }

    /// Waits one escalating unit.
    pub fn pause(&mut self) {
        match self.rounds {
            0..=31 => std::hint::spin_loop(),
            32..=95 => std::thread::yield_now(),
            _ => std::thread::sleep(Duration::from_micros(
                // Cap the park at 100µs so wakeups stay prompt even
                // for long waits.
                u64::from((self.rounds - 95).min(2)) * 50,
            )),
        }
        self.rounds = self.rounds.saturating_add(1);
    }

    /// Forgets the wait's history; the next [`Parker::pause`] spins again.
    pub fn reset(&mut self) {
        self.rounds = 0;
    }
}

/// The deterministic wait for one `(seed, task, attempt)` triple: a
/// uniform draw from `[1, min(cap, base << attempt)]`. Pure — the same
/// triple yields the same wait on every run regardless of thread
/// interleaving, so backoff schedules are reproducible.
pub fn deterministic_steps(seed: u64, task: u64, attempt: u32, base: u64, cap: u64) -> u64 {
    let ceiling = base.saturating_shl(attempt.min(32)).clamp(1, cap.max(1));
    let mut rng = SmallRng::seed_from_u64(
        seed ^ task.wrapping_mul(0x9e3779b97f4a7c15) ^ u64::from(attempt).wrapping_mul(0xd6e8feb8),
    );
    rng.gen_range(1..=ceiling)
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if shift >= 64 || self > (u64::MAX >> shift) {
            u64::MAX
        } else {
            self << shift
        }
    }
}

/// Per-task randomized exponential backoff over FIFO dispatch.
///
/// Dispenses tasks exactly like [`Fifo`](crate::Fifo); on abort, the
/// worker waits a deterministic pseudo-random number of steps that
/// doubles (up to `cap`) with each consecutive failure of the same
/// task, instead of hot-restarting against the same contenders.
#[derive(Debug, Clone)]
pub struct Backoff {
    /// Seed of the deterministic wait schedule.
    pub seed: u64,
    /// Wait ceiling after the first abort, in steps.
    pub base: u64,
    /// Hard ceiling on any single wait, in steps.
    pub cap: u64,
}

impl Backoff {
    /// A backoff policy with the default curve (base 16, cap 4096).
    pub fn new(seed: u64) -> Self {
        Backoff {
            seed,
            base: 16,
            cap: 4096,
        }
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::new(0x006a_616e_7573)
    }
}

impl SchedulePolicy for Backoff {
    fn name(&self) -> &'static str {
        "backoff"
    }

    fn bind(&self, tasks: usize, _workers: usize) -> Box<dyn TaskSource> {
        Box::new(BackoffSource {
            next: AtomicUsize::new(0),
            total: tasks,
            config: self.clone(),
            waits: AtomicU64::new(0),
            steps: AtomicU64::new(0),
        })
    }
}

struct BackoffSource {
    next: AtomicUsize,
    total: usize,
    config: Backoff,
    waits: AtomicU64,
    steps: AtomicU64,
}

impl TaskSource for BackoffSource {
    fn next_task(&self, _worker: usize) -> Option<Dispatch> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.total).then(|| Dispatch::own(i))
    }

    fn on_abort(&self, _worker: usize, task: usize, attempt: u32) -> BackoffHint {
        let steps = deterministic_steps(
            self.config.seed,
            task as u64,
            attempt,
            self.config.base,
            self.config.cap,
        );
        self.waits.fetch_add(1, Ordering::Relaxed);
        self.steps.fetch_add(steps, Ordering::Relaxed);
        BackoffHint { steps }
    }

    fn stats(&self) -> SchedStats {
        SchedStats {
            dispatched: self.next.load(Ordering::Relaxed).min(self.total) as u64,
            backoff_waits: self.waits.load(Ordering::Relaxed),
            backoff_steps: self.steps.load(Ordering::Relaxed),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_steps_are_reproducible_and_bounded() {
        for attempt in 0..20 {
            let a = deterministic_steps(7, 3, attempt, 16, 4096);
            let b = deterministic_steps(7, 3, attempt, 16, 4096);
            assert_eq!(a, b, "same triple, same wait");
            assert!((1..=4096).contains(&a), "wait {a} within [1, cap]");
        }
        // Different tasks draw different schedules (with overwhelming
        // probability for this seed).
        let streams: Vec<u64> = (0..16)
            .map(|t| deterministic_steps(7, t, 3, 16, 4096))
            .collect();
        assert!(streams.iter().any(|&s| s != streams[0]));
    }

    #[test]
    fn ceiling_doubles_then_caps() {
        // The draw is uniform in [1, ceiling]; sample many tasks and
        // check the observed max tracks the ceiling.
        let max_at = |attempt: u32| {
            (0..512)
                .map(|t| deterministic_steps(1, t, attempt, 16, 256))
                .max()
                .unwrap()
        };
        assert!(max_at(0) <= 16);
        assert!(max_at(1) <= 32);
        assert!(max_at(10) <= 256, "cap bounds the wait");
        assert!(max_at(10) > 128, "large attempts reach the cap region");
    }

    #[test]
    fn backoff_source_dispenses_fifo_and_counts() {
        let policy = Backoff::new(42);
        let source = policy.bind(3, 2);
        assert_eq!(source.next_task(0), Some(Dispatch::own(0)));
        assert_eq!(source.next_task(1), Some(Dispatch::own(1)));
        assert_eq!(source.next_task(0), Some(Dispatch::own(2)));
        assert_eq!(source.next_task(1), None);
        let hint = source.on_abort(0, 1, 0);
        assert!(hint.steps >= 1 && hint.steps <= 16);
        let stats = source.stats();
        assert_eq!(stats.dispatched, 3);
        assert_eq!(stats.backoff_waits, 1);
        assert_eq!(stats.backoff_steps, hint.steps);
    }

    #[test]
    fn wait_bails_early() {
        let t0 = std::time::Instant::now();
        wait(1_000_000, || true);
        assert!(t0.elapsed() < Duration::from_millis(100), "bail is prompt");
    }

    #[test]
    fn parker_escalates_without_panicking() {
        let mut p = Parker::new();
        for _ in 0..200 {
            p.pause();
        }
        p.reset();
        p.pause();
    }
}
