//! Relation schemas and functional dependencies.

use std::fmt;
use std::sync::Arc;

/// A functional dependency `C1 -> C2` (§6.1).
///
/// Each relation has at most one FD, and when present its domain and range
/// partition the relation's columns — specializing the relation as a
/// function mapping "locations" (domain valuations) to "values" (range
/// valuations).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fd {
    domain: Vec<usize>,
    range: Vec<usize>,
}

impl Fd {
    /// Creates a functional dependency with the given domain and range
    /// column indices.
    ///
    /// # Panics
    ///
    /// Panics if the domain is empty or if the domain and range overlap.
    pub fn new(domain: &[usize], range: &[usize]) -> Self {
        assert!(!domain.is_empty(), "FD domain must not be empty");
        assert!(
            domain.iter().all(|d| !range.contains(d)),
            "FD domain and range must be disjoint"
        );
        Fd {
            domain: domain.to_vec(),
            range: range.to_vec(),
        }
    }

    /// The domain column indices (`C1`).
    pub fn domain(&self) -> &[usize] {
        &self.domain
    }

    /// The range column indices (`C2`).
    pub fn range(&self) -> &[usize] {
        &self.range
    }
}

/// The schema of a [`crate::Relation`]: named columns plus an optional
/// functional dependency whose domain and range partition the columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<String>,
    fd: Option<Fd>,
}

impl Schema {
    /// Creates a schema without a functional dependency.
    pub fn new(columns: &[&str]) -> Arc<Self> {
        Arc::new(Schema {
            columns: columns.iter().map(|c| c.to_string()).collect(),
            fd: None,
        })
    }

    /// Creates a schema with a functional dependency.
    ///
    /// # Panics
    ///
    /// Panics if the FD's domain and range do not partition the columns.
    pub fn with_fd(columns: &[&str], fd: Fd) -> Arc<Self> {
        let n = columns.len();
        let mut seen = vec![false; n];
        for &c in fd.domain().iter().chain(fd.range()) {
            assert!(c < n, "FD column {c} out of bounds for {n} columns");
            assert!(!seen[c], "FD mentions column {c} twice");
            seen[c] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "FD domain and range must partition the columns"
        );
        Arc::new(Schema {
            columns: columns.iter().map(|c| c.to_string()).collect(),
            fd: Some(fd),
        })
    }

    /// The number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The column names, in positional order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The index of the named column, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// The functional dependency, if any.
    pub fn fd(&self) -> Option<&Fd> {
        self.fd.as_ref()
    }

    /// The columns that identify a tuple for matching purposes: the FD
    /// domain when an FD is present, otherwise all columns.
    pub fn key_columns(&self) -> Vec<usize> {
        match &self.fd {
            Some(fd) => fd.domain().to_vec(),
            None => (0..self.columns.len()).collect(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.columns.join(", "))?;
        if let Some(fd) = &self.fd {
            write!(f, " fd {:?}->{:?}", fd.domain(), fd.range())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_partition_is_validated() {
        let s = Schema::with_fd(&["k", "v"], Fd::new(&[0], &[1]));
        assert_eq!(s.key_columns(), vec![0]);
        assert_eq!(s.column_index("v"), Some(1));
        assert_eq!(s.column_index("missing"), None);
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn fd_must_cover_all_columns() {
        let _ = Schema::with_fd(&["a", "b", "c"], Fd::new(&[0], &[1]));
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn fd_domain_range_disjoint() {
        let _ = Fd::new(&[0, 1], &[1]);
    }

    #[test]
    fn no_fd_keys_are_all_columns() {
        let s = Schema::new(&["a", "b"]);
        assert_eq!(s.key_columns(), vec![0, 1]);
        assert!(s.fd().is_none());
    }

    #[test]
    fn multi_column_fd() {
        let s = Schema::with_fd(&["x", "y", "color"], Fd::new(&[0, 1], &[2]));
        assert_eq!(s.key_columns(), vec![0, 1]);
        assert_eq!(s.arity(), 3);
    }
}
