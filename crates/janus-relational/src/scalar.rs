//! Scalar and composite values.

use std::fmt;
use std::sync::Arc;

use crate::Relation;

/// An atomic value: the universe `V` of §6.1, which includes the integers.
///
/// Scalars are the components of [`crate::Tuple`]s and the plain contents of
/// scalar memory locations.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scalar {
    /// The unit value (used for locations that only carry presence).
    Unit,
    /// A boolean.
    Bool(bool),
    /// A signed integer (`Z ⊆ V`).
    Int(i64),
    /// An interned string.
    Str(Arc<str>),
}

impl Scalar {
    /// Builds a string scalar from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Self {
        Scalar::Str(Arc::from(s.as_ref()))
    }

    /// Returns the integer payload, if this is an [`Scalar::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Scalar::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a [`Scalar::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Scalar::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Unit => write!(f, "()"),
            Scalar::Bool(b) => write!(f, "{b}"),
            Scalar::Int(i) => write!(f, "{i}"),
            Scalar::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Scalar {
    fn from(i: i64) -> Self {
        Scalar::Int(i)
    }
}

impl From<bool> for Scalar {
    fn from(b: bool) -> Self {
        Scalar::Bool(b)
    }
}

impl From<&str> for Scalar {
    fn from(s: &str) -> Self {
        Scalar::str(s)
    }
}

/// The value stored at a shared memory location.
///
/// A location either holds a [`Scalar`] (memory-level transactions) or a
/// [`Relation`] (data structures equipped with an abstraction
/// specification, §6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A scalar value.
    Scalar(Scalar),
    /// A relational value (the abstract state of an ADT).
    Rel(Relation),
}

impl Value {
    /// Convenience constructor for an integer value.
    pub fn int(i: i64) -> Self {
        Value::Scalar(Scalar::Int(i))
    }

    /// Convenience constructor for a boolean value.
    pub fn bool(b: bool) -> Self {
        Value::Scalar(Scalar::Bool(b))
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Scalar(Scalar::str(s))
    }

    /// The unit value.
    pub fn unit() -> Self {
        Value::Scalar(Scalar::Unit)
    }

    /// Returns the scalar payload, if this is a scalar value.
    pub fn as_scalar(&self) -> Option<&Scalar> {
        match self {
            Value::Scalar(s) => Some(s),
            Value::Rel(_) => None,
        }
    }

    /// Returns the integer payload, if this is an integer scalar.
    pub fn as_int(&self) -> Option<i64> {
        self.as_scalar().and_then(Scalar::as_int)
    }

    /// Returns the boolean payload, if this is a boolean scalar.
    pub fn as_bool(&self) -> Option<bool> {
        self.as_scalar().and_then(Scalar::as_bool)
    }

    /// Returns the relation payload, if this is a relational value.
    pub fn as_rel(&self) -> Option<&Relation> {
        match self {
            Value::Rel(r) => Some(r),
            Value::Scalar(_) => None,
        }
    }

    /// Returns a mutable reference to the relation payload, if relational.
    pub fn as_rel_mut(&mut self) -> Option<&mut Relation> {
        match self {
            Value::Rel(r) => Some(r),
            Value::Scalar(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Scalar(s) => write!(f, "{s}"),
            Value::Rel(r) => write!(f, "{r}"),
        }
    }
}

impl From<Scalar> for Value {
    fn from(s: Scalar) -> Self {
        Value::Scalar(s)
    }
}

impl From<Relation> for Value {
    fn from(r: Relation) -> Self {
        Value::Rel(r)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_ordering_is_total() {
        let mut v = [
            Scalar::Int(3),
            Scalar::Bool(true),
            Scalar::Unit,
            Scalar::str("a"),
            Scalar::Int(-1),
        ];
        v.sort();
        // Sorting must be stable and total; exact order is an implementation
        // detail, but equal elements must compare equal.
        assert_eq!(v.len(), 5);
        assert_eq!(Scalar::Int(3), Scalar::Int(3));
        assert_ne!(Scalar::Int(3), Scalar::Int(4));
    }

    #[test]
    fn scalar_accessors() {
        assert_eq!(Scalar::Int(7).as_int(), Some(7));
        assert_eq!(Scalar::Bool(true).as_int(), None);
        assert_eq!(Scalar::Bool(false).as_bool(), Some(false));
        assert_eq!(Scalar::str("x").as_bool(), None);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::int(5).as_int(), Some(5));
        assert_eq!(Value::bool(true).as_bool(), Some(true));
        assert!(Value::int(5).as_rel().is_none());
        assert_eq!(Value::unit(), Value::Scalar(Scalar::Unit));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(4i64), Value::int(4));
        assert_eq!(Value::from(false), Value::bool(false));
        assert_eq!(Scalar::from("hi"), Scalar::str("hi"));
    }

    #[test]
    fn display_is_nonempty() {
        for v in [
            Value::int(0),
            Value::bool(false),
            Value::str(""),
            Value::unit(),
        ] {
            assert!(!format!("{v}").is_empty());
        }
    }
}
