//! Tuples: mappings from columns to scalar values.

use std::fmt;

use crate::Scalar;

/// A tuple `t = (c1 : v1, ..., ck : vk)` over the columns of a
/// [`crate::Schema`], stored positionally.
///
/// Column names live in the schema; the tuple stores only the valuation.
/// `t.get(c)` is the paper's `t_c`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Vec<Scalar>);

impl Tuple {
    /// Creates a tuple from a column valuation.
    pub fn new(values: Vec<Scalar>) -> Self {
        Tuple(values)
    }

    /// The number of columns.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The valuation of column `c` (`t_c`).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds for this tuple's arity.
    pub fn get(&self, c: usize) -> &Scalar {
        &self.0[c]
    }

    /// The valuation of column `c`, or `None` if out of bounds.
    pub fn try_get(&self, c: usize) -> Option<&Scalar> {
        self.0.get(c)
    }

    /// Returns the projection of this tuple onto the given columns.
    ///
    /// # Panics
    ///
    /// Panics if any column index is out of bounds.
    pub fn project(&self, columns: &[usize]) -> Vec<Scalar> {
        columns.iter().map(|&c| self.0[c].clone()).collect()
    }

    /// Whether two tuples agree on all the given columns.
    pub fn agrees_on(&self, other: &Tuple, columns: &[usize]) -> bool {
        columns
            .iter()
            .all(|&c| self.try_get(c).is_some() && self.try_get(c) == other.try_get(c))
    }

    /// Iterates over the scalar components in column order.
    pub fn iter(&self) -> std::slice::Iter<'_, Scalar> {
        self.0.iter()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Scalar>> for Tuple {
    fn from(values: Vec<Scalar>) -> Self {
        Tuple::new(values)
    }
}

impl<'a> IntoIterator for &'a Tuple {
    type Item = &'a Scalar;
    type IntoIter = std::slice::Iter<'a, Scalar>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Builds a tuple from scalar-convertible components.
///
/// ```
/// use janus_relational::{Tuple, Scalar};
/// let t = janus_relational::tuple![1, true, "x"];
/// assert_eq!(t.get(0), &Scalar::Int(1));
/// ```
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Scalar::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_and_agreement() {
        let t1 = tuple![1, true, "a"];
        let t2 = tuple![1, false, "a"];
        assert!(t1.agrees_on(&t2, &[0, 2]));
        assert!(!t1.agrees_on(&t2, &[1]));
        assert_eq!(t1.project(&[2, 0]), vec![Scalar::str("a"), Scalar::Int(1)]);
    }

    #[test]
    fn agreement_is_false_out_of_bounds() {
        let t1 = tuple![1];
        let t2 = tuple![1];
        assert!(!t1.agrees_on(&t2, &[3]));
    }

    #[test]
    fn display_roundtrip_shape() {
        let t = tuple![1, true];
        assert_eq!(format!("{t}"), "(1, true)");
    }

    #[test]
    fn iteration_order_is_columnar() {
        let t = tuple![1, 2, 3];
        let ints: Vec<i64> = t.iter().filter_map(Scalar::as_int).collect();
        assert_eq!(ints, vec![1, 2, 3]);
    }
}
