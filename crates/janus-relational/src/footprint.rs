//! Read/write footprints at key granularity (Table 3 and §5.1).
//!
//! The paper defines footprints over the *subvalue lattice*: for a
//! relational value the subvalues are sets of tuples ordered by inclusion.
//! Because every relation in JANUS carries at most one functional
//! dependency whose domain identifies tuples, footprints can be tracked at
//! the granularity of FD-domain *keys* — exactly the information the
//! write-set approach records, which is what lets sequence-based detection
//! run with "no instrumentation overhead beyond that of the write-set
//! approach" (§3).

use std::collections::BTreeSet;
use std::fmt;

use crate::Scalar;

/// The valuation of a relation's key columns, identifying one "cell" of a
/// relational object (e.g. the index of a bit in a `BitSet`, the key of a
/// `Map` entry).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(Vec<Scalar>);

impl Key {
    /// Creates a key from its component scalars (in key-column order).
    pub fn new(components: Vec<Scalar>) -> Self {
        Key(components)
    }

    /// A single-component key.
    pub fn scalar(s: impl Into<Scalar>) -> Self {
        Key(vec![s.into()])
    }

    /// The key's components.
    pub fn components(&self) -> &[Scalar] {
        &self.0
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "⟩")
    }
}

impl From<Vec<Scalar>> for Key {
    fn from(components: Vec<Scalar>) -> Self {
        Key::new(components)
    }
}

/// A set of accessed cells within one shared object: either every cell
/// (`All`, e.g. a `clear()` or an unconstrained select) or a finite set of
/// keys.
///
/// `All` is the conservative top element; overlap checks treat it as
/// intersecting everything.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CellSet {
    /// No cells.
    #[default]
    Empty,
    /// The cells identified by these keys.
    Keys(BTreeSet<Key>),
    /// Every cell of the object (including absent ones — covers phantom
    /// reads by unconstrained selects).
    All,
}

impl CellSet {
    /// The empty cell set.
    pub fn empty() -> Self {
        CellSet::Empty
    }

    /// A singleton cell set.
    pub fn key(k: Key) -> Self {
        let mut s = BTreeSet::new();
        s.insert(k);
        CellSet::Keys(s)
    }

    /// A cell set from an iterator of keys.
    pub fn keys(keys: impl IntoIterator<Item = Key>) -> Self {
        let s: BTreeSet<Key> = keys.into_iter().collect();
        if s.is_empty() {
            CellSet::Empty
        } else {
            CellSet::Keys(s)
        }
    }

    /// Whether no cell is covered.
    pub fn is_empty(&self) -> bool {
        match self {
            CellSet::Empty => true,
            CellSet::Keys(s) => s.is_empty(),
            CellSet::All => false,
        }
    }

    /// Whether the two cell sets share at least one cell (the `⊓ ... ≠ ⊥`
    /// test of Equation 1).
    pub fn overlaps(&self, other: &CellSet) -> bool {
        match (self, other) {
            (CellSet::Empty, _) | (_, CellSet::Empty) => false,
            (CellSet::All, _) | (_, CellSet::All) => true,
            (CellSet::Keys(a), CellSet::Keys(b)) => {
                // Iterate the smaller set.
                let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
                small.iter().any(|k| large.contains(k))
            }
        }
    }

    /// Whether this cell set covers the given key.
    pub fn covers(&self, key: &Key) -> bool {
        match self {
            CellSet::Empty => false,
            CellSet::Keys(s) => s.contains(key),
            CellSet::All => true,
        }
    }

    /// Whether every cell of `self` is covered by `other`.
    pub fn subset_of(&self, other: &CellSet) -> bool {
        match (self, other) {
            (CellSet::Empty, _) => true,
            (_, CellSet::All) => true,
            (CellSet::All, _) => false,
            (CellSet::Keys(a), CellSet::Keys(b)) => a.is_subset(b),
            (CellSet::Keys(a), CellSet::Empty) => a.is_empty(),
        }
    }

    /// The join (union) of two cell sets.
    pub fn union(&self, other: &CellSet) -> CellSet {
        match (self, other) {
            (CellSet::All, _) | (_, CellSet::All) => CellSet::All,
            (CellSet::Empty, s) | (s, CellSet::Empty) => s.clone(),
            (CellSet::Keys(a), CellSet::Keys(b)) => CellSet::Keys(a.union(b).cloned().collect()),
        }
    }

    /// Merges another cell set into this one in place.
    pub fn extend(&mut self, other: &CellSet) {
        *self = self.union(other);
    }

    /// The finite keys, if this set is finite.
    pub fn as_keys(&self) -> Option<&BTreeSet<Key>> {
        match self {
            CellSet::Keys(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for CellSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellSet::Empty => write!(f, "∅"),
            CellSet::All => write!(f, "⊤"),
            CellSet::Keys(s) => {
                write!(f, "{{")?;
                for (i, k) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// The read and write footprint of an operation restricted to one shared
/// object (§5.1 and Table 3).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Footprint {
    /// Cells the operation reads (`op_s^r`).
    pub read: CellSet,
    /// Cells the operation writes (`op_s^w`).
    pub write: CellSet,
}

impl Footprint {
    /// A footprint that reads the given cells and writes nothing.
    pub fn read_only(read: CellSet) -> Self {
        Footprint {
            read,
            write: CellSet::Empty,
        }
    }

    /// A footprint that writes the given cells and reads nothing.
    pub fn write_only(write: CellSet) -> Self {
        Footprint {
            read: CellSet::Empty,
            write,
        }
    }

    /// Whether this operation writes at all.
    pub fn is_write(&self) -> bool {
        !self.write.is_empty()
    }

    /// The cells accessed either way (`op^w ∪ op^r`), i.e.
    /// `GETACCESSEDLOCATIONS` restricted to this object.
    pub fn accessed(&self) -> CellSet {
        self.read.union(&self.write)
    }

    /// Equation 1 instantiated for footprints: the two operations depend
    /// on each other iff they access a common subvalue, either for reading
    /// or for writing. (Input dependencies — read/read — are subsumed, as
    /// in the paper.)
    pub fn depends(&self, other: &Footprint) -> bool {
        self.accessed().overlaps(&other.accessed())
    }

    /// The write-set conflict test: a common cell that at least one side
    /// writes.
    pub fn ws_conflicts(&self, other: &Footprint) -> bool {
        self.write.overlaps(&other.accessed()) || other.write.overlaps(&self.accessed())
    }

    /// The cumulative footprint of a transformer: the union of its
    /// operations' footprints (§6.2).
    pub fn union(&self, other: &Footprint) -> Footprint {
        Footprint {
            read: self.read.union(&other.read),
            write: self.write.union(&other.write),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: i64) -> Key {
        Key::scalar(i)
    }

    #[test]
    fn overlap_rules() {
        let a = CellSet::keys([k(1), k(2)]);
        let b = CellSet::keys([k(2), k(3)]);
        let c = CellSet::keys([k(4)]);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(CellSet::All.overlaps(&a));
        assert!(!CellSet::All.overlaps(&CellSet::Empty));
        assert!(!CellSet::Empty.overlaps(&CellSet::Empty));
    }

    #[test]
    fn union_and_covers() {
        let a = CellSet::key(k(1));
        let b = CellSet::key(k(2));
        let u = a.union(&b);
        assert!(u.covers(&k(1)) && u.covers(&k(2)) && !u.covers(&k(3)));
        assert_eq!(a.union(&CellSet::All), CellSet::All);
        assert_eq!(a.union(&CellSet::Empty), a);
        assert!(CellSet::All.covers(&k(99)));
    }

    #[test]
    fn keys_of_empty_iterator_is_empty() {
        assert!(CellSet::keys(std::iter::empty()).is_empty());
        assert_eq!(CellSet::keys(std::iter::empty()), CellSet::Empty);
    }

    #[test]
    fn write_set_conflict_semantics() {
        let read1 = Footprint::read_only(CellSet::key(k(1)));
        let write1 = Footprint::write_only(CellSet::key(k(1)));
        let write2 = Footprint::write_only(CellSet::key(k(2)));
        // read/read: no conflict, but a dependency.
        assert!(!read1.ws_conflicts(&read1));
        assert!(read1.depends(&read1));
        // read/write on same cell: conflict.
        assert!(read1.ws_conflicts(&write1));
        // write/write on same cell: conflict.
        assert!(write1.ws_conflicts(&write1));
        // disjoint cells: nothing.
        assert!(!write1.ws_conflicts(&write2));
        assert!(!write1.depends(&write2));
    }

    #[test]
    fn footprint_union_accumulates() {
        let a = Footprint {
            read: CellSet::key(k(1)),
            write: CellSet::Empty,
        };
        let b = Footprint {
            read: CellSet::Empty,
            write: CellSet::key(k(2)),
        };
        let u = a.union(&b);
        assert!(u.read.covers(&k(1)));
        assert!(u.write.covers(&k(2)));
        assert!(u.is_write());
        assert!(!a.is_write());
    }

    #[test]
    fn accessed_joins_read_write() {
        let fp = Footprint {
            read: CellSet::key(k(1)),
            write: CellSet::key(k(2)),
        };
        let acc = fp.accessed();
        assert!(acc.covers(&k(1)) && acc.covers(&k(2)));
    }
}
