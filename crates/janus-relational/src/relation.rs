//! Relations: sets of tuples over a shared schema.

use std::fmt;
use std::sync::Arc;

use janus_persist::PersistentMap;

use crate::{Formula, Key, Schema, Tuple};

/// A relation: a set of [`Tuple`]s over identical columns (§6.1).
///
/// The partial ordering on relations is the subset relation, join is set
/// union, meet is set intersection, and subtraction is set subtraction.
/// When the schema carries a functional dependency, [`Relation::insert`]
/// maintains it by displacing matching tuples.
///
/// The tuple set is a persistent ordered map, so cloning a relation —
/// which happens on every transaction privatization touching the object —
/// is O(1), per §4's "Versioning" prescription.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Arc<Schema>,
    tuples: PersistentMap<Tuple, ()>,
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.tuples.len() == other.tuples.len()
            && self
                .tuples
                .keys()
                .zip(other.tuples.keys())
                .all(|(a, b)| a == b)
    }
}

impl Eq for Relation {}

impl Relation {
    /// The empty relation over the given schema.
    pub fn empty(schema: Arc<Schema>) -> Self {
        Relation {
            schema,
            tuples: PersistentMap::new(),
        }
    }

    /// Builds a relation from tuples.
    ///
    /// Tuples are inserted in order with FD maintenance, so later tuples
    /// displace earlier matching ones.
    pub fn from_tuples(schema: Arc<Schema>, tuples: impl IntoIterator<Item = Tuple>) -> Self {
        let mut r = Relation::empty(schema);
        for t in tuples {
            r.insert(t);
        }
        r
    }

    /// The schema shared by all tuples of this relation.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Whether the relation contains exactly this tuple.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains_key(t)
    }

    /// Tuple matching `t ~r t'` (§6.1): if the schema defines an FD, the
    /// tuples must agree on the FD's domain columns; otherwise they must
    /// agree on all columns.
    pub fn matches(&self, t: &Tuple, other: &Tuple) -> bool {
        let keys = self.schema.key_columns();
        t.agrees_on(other, &keys)
    }

    /// The tuples whose key-column projection equals `key`. When the key
    /// columns form a prefix of the schema (the common case for ADT
    /// specifications), this is an O(log n + matches) range scan over the
    /// ordered tuple set; otherwise it falls back to a full scan.
    fn with_key(&self, key: &[crate::Scalar]) -> Vec<Tuple> {
        let keys = self.schema.key_columns();
        let is_prefix = keys.iter().enumerate().all(|(i, &c)| c == i);
        if is_prefix {
            let lower = Tuple::new(key.to_vec());
            self.tuples
                .iter_from(&lower)
                .map(|(t, _)| t)
                .take_while(|t| t.project(&keys) == key)
                .cloned()
                .collect()
        } else {
            self.tuples
                .keys()
                .filter(|t| t.project(&keys) == key)
                .cloned()
                .collect()
        }
    }

    /// All tuples matching `t` under `~r`.
    pub fn matching(&self, t: &Tuple) -> Vec<Tuple> {
        self.with_key(&t.project(&self.schema.key_columns()))
    }

    /// `insert r t`: removes the tuples matching `t`, then adds `t`
    /// (Table 2). Returns the displaced tuples.
    ///
    /// # Panics
    ///
    /// Panics if the tuple's arity does not match the schema.
    pub fn insert(&mut self, t: Tuple) -> Vec<Tuple> {
        assert_eq!(
            t.arity(),
            self.schema.arity(),
            "tuple arity must match schema arity"
        );
        let displaced = self.matching(&t);
        for d in &displaced {
            self.tuples.remove(d);
        }
        self.tuples.insert(t, ());
        displaced
    }

    /// `remove r t`: ensures `t` is not in the relation (Table 2).
    /// Returns whether the tuple was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        self.tuples.remove(t).is_some()
    }

    /// Removes every tuple whose key columns equal `key`. Returns the
    /// removed tuples. This is the effect of `remove` addressed by key,
    /// used by ADT models (e.g. `Map::remove(k)`).
    pub fn remove_key(&mut self, key: &Key) -> Vec<Tuple> {
        let removed = self.with_key(key.components());
        for t in &removed {
            self.tuples.remove(t);
        }
        removed
    }

    /// `w := select r f`: the tuples satisfying `f` (Table 2). The
    /// relation itself is unchanged. Selections that pin the key columns
    /// use the ordered range scan.
    pub fn select(&self, f: &Formula) -> Vec<Tuple> {
        if let Some(vals) = f.pinned_valuation(&self.schema.key_columns()) {
            self.with_key(&vals)
                .into_iter()
                .filter(|t| f.sat(t))
                .collect()
        } else {
            self.tuples.keys().filter(|t| f.sat(t)).cloned().collect()
        }
    }

    /// Looks up the unique tuple with the given key valuation (projection
    /// onto the schema's key columns), if any.
    pub fn lookup(&self, key: &Key) -> Option<Tuple> {
        self.with_key(key.components()).into_iter().next()
    }

    /// The key of a tuple: its projection onto the schema's key columns.
    pub fn key_of(&self, t: &Tuple) -> Key {
        Key::new(t.project(&self.schema.key_columns()))
    }

    /// Iterates over the tuples in canonical (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.keys()
    }

    /// Set union (join in the relation lattice).
    pub fn union(&self, other: &Relation) -> Relation {
        let mut tuples = self.tuples.clone();
        for t in other.iter() {
            tuples.insert(t.clone(), ());
        }
        Relation {
            schema: Arc::clone(&self.schema),
            tuples,
        }
    }

    /// Set intersection (meet in the relation lattice).
    pub fn intersection(&self, other: &Relation) -> Relation {
        let mut tuples = PersistentMap::new();
        for t in self.iter() {
            if other.contains(t) {
                tuples.insert(t.clone(), ());
            }
        }
        Relation {
            schema: Arc::clone(&self.schema),
            tuples,
        }
    }

    /// Set subtraction.
    pub fn subtract(&self, other: &Relation) -> Relation {
        let mut tuples = PersistentMap::new();
        for t in self.iter() {
            if !other.contains(t) {
                tuples.insert(t.clone(), ());
            }
        }
        Relation {
            schema: Arc::clone(&self.schema),
            tuples,
        }
    }

    /// Removes all tuples.
    pub fn clear(&mut self) {
        self.tuples = PersistentMap::new();
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tuple, Fd, Scalar};

    fn bitset_schema() -> Arc<Schema> {
        Schema::with_fd(&["index", "bit"], Fd::new(&[0], &[1]))
    }

    #[test]
    fn insert_displaces_matching_tuples() {
        let mut r = Relation::empty(bitset_schema());
        assert!(r.insert(tuple![3, false]).is_empty());
        let displaced = r.insert(tuple![3, true]);
        assert_eq!(displaced, vec![tuple![3, false]]);
        assert_eq!(r.len(), 1);
        assert!(r.contains(&tuple![3, true]));
    }

    #[test]
    fn insert_without_fd_matches_whole_tuple() {
        let mut r = Relation::empty(Schema::new(&["a", "b"]));
        r.insert(tuple![1, 2]);
        let displaced = r.insert(tuple![1, 3]);
        assert!(displaced.is_empty(), "different tuples do not match");
        assert_eq!(r.len(), 2);
        let displaced = r.insert(tuple![1, 2]);
        assert_eq!(displaced, vec![tuple![1, 2]]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn remove_is_idempotent() {
        let mut r = Relation::empty(bitset_schema());
        r.insert(tuple![1, true]);
        assert!(r.remove(&tuple![1, true]));
        assert!(!r.remove(&tuple![1, true]));
        assert!(r.is_empty());
    }

    #[test]
    fn remove_key_removes_by_domain() {
        let mut r = Relation::empty(bitset_schema());
        r.insert(tuple![1, true]);
        r.insert(tuple![2, false]);
        let removed = r.remove_key(&Key::new(vec![Scalar::Int(1)]));
        assert_eq!(removed, vec![tuple![1, true]]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn select_filters_by_formula() {
        let mut r = Relation::empty(bitset_schema());
        r.insert(tuple![1, true]);
        r.insert(tuple![2, false]);
        r.insert(tuple![3, true]);
        let sel = r.select(&Formula::eq(1, true));
        assert_eq!(sel.len(), 2);
        let sel = r.select(&Formula::eq(0, 2i64));
        assert_eq!(sel, vec![tuple![2, false]]);
    }

    #[test]
    fn lookup_by_key() {
        let mut r = Relation::empty(bitset_schema());
        r.insert(tuple![7, true]);
        let k = Key::new(vec![Scalar::Int(7)]);
        assert_eq!(r.lookup(&k), Some(tuple![7, true]));
        assert_eq!(r.lookup(&Key::new(vec![Scalar::Int(8)])), None);
        assert_eq!(r.key_of(&tuple![7, true]), k);
    }

    #[test]
    fn lattice_operations() {
        let s = bitset_schema();
        let a = Relation::from_tuples(Arc::clone(&s), [tuple![1, true], tuple![2, true]]);
        let b = Relation::from_tuples(Arc::clone(&s), [tuple![2, true], tuple![3, true]]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.intersection(&b).len(), 1);
        assert_eq!(a.subtract(&b).len(), 1);
        assert!(a.subtract(&b).contains(&tuple![1, true]));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::empty(bitset_schema());
        r.insert(tuple![1]);
    }

    #[test]
    fn clear_empties() {
        let mut r = Relation::empty(bitset_schema());
        r.insert(tuple![1, true]);
        r.clear();
        assert!(r.is_empty());
    }
}
