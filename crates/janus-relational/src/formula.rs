//! The propositional formula language of Table 1.
//!
//! ```text
//! f := true | false | c = v | ¬f | f ∧ f | f ∨ f
//! ```
//!
//! Formulas serve two roles in JANUS: as *selection criteria* for
//! [`crate::RelOp::Select`] (a tuple `t` satisfies `c = v` iff `t_c = v`),
//! and as *symbolic descriptions of relation contents* (Table 4, see
//! [`crate::content`]).

use std::collections::BTreeSet;
use std::fmt;

use crate::{Scalar, Tuple};

/// A propositional formula over column-equality atoms (Table 1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// `true` — satisfied by every tuple.
    True,
    /// `false` — satisfied by no tuple.
    False,
    /// `c = v` — satisfied by tuples whose column `c` holds `v`.
    Eq(usize, Scalar),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// The atom `c = v`.
    pub fn eq(column: usize, value: impl Into<Scalar>) -> Self {
        Formula::Eq(column, value.into())
    }

    /// Negation `¬self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        match self {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            f => Formula::Not(Box::new(f)),
        }
    }

    /// Conjunction `self ∧ other`, with constant folding.
    pub fn and(self, other: Formula) -> Self {
        match (self, other) {
            (Formula::False, _) | (_, Formula::False) => Formula::False,
            (Formula::True, g) => g,
            (f, Formula::True) => f,
            (f, g) => Formula::And(Box::new(f), Box::new(g)),
        }
    }

    /// Disjunction `self ∨ other`, with constant folding.
    pub fn or(self, other: Formula) -> Self {
        match (self, other) {
            (Formula::True, _) | (_, Formula::True) => Formula::True,
            (Formula::False, g) => g,
            (f, Formula::False) => f,
            (f, g) => Formula::Or(Box::new(f), Box::new(g)),
        }
    }

    /// Conjunction of `columns[i] = values[i]` for every component —
    /// the formula `⋀_{c ∈ C} c = t_c` used by the Table 4 update rules.
    pub fn tuple_eq(columns: &[usize], values: &[Scalar]) -> Self {
        assert_eq!(columns.len(), values.len());
        let mut f = Formula::True;
        for (&c, v) in columns.iter().zip(values) {
            f = f.and(Formula::eq(c, v.clone()));
        }
        f
    }

    /// Whether tuple `t` satisfies this formula (`t |= f`).
    pub fn sat(&self, t: &Tuple) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Eq(c, v) => t.try_get(*c) == Some(v),
            Formula::Not(f) => !f.sat(t),
            Formula::And(f, g) => f.sat(t) && g.sat(t),
            Formula::Or(f, g) => f.sat(t) || g.sat(t),
        }
    }

    /// All `(column, value)` atoms appearing in the formula.
    pub fn atoms(&self) -> BTreeSet<(usize, Scalar)> {
        let mut out = BTreeSet::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut BTreeSet<(usize, Scalar)>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Eq(c, v) => {
                out.insert((*c, v.clone()));
            }
            Formula::Not(f) => f.collect_atoms(out),
            Formula::And(f, g) | Formula::Or(f, g) => {
                f.collect_atoms(out);
                g.collect_atoms(out);
            }
        }
    }

    /// If this formula is a *positive conjunction of equality atoms* that
    /// pins each of the given columns to exactly one value, returns the
    /// pinned valuation in column order. Used to compute key-granular
    /// footprints for selects (Table 3).
    pub fn pinned_valuation(&self, columns: &[usize]) -> Option<Vec<Scalar>> {
        let mut bindings: Vec<Option<Scalar>> = vec![None; columns.len()];
        if !self.collect_positive_bindings(columns, &mut bindings) {
            return None;
        }
        bindings.into_iter().collect()
    }

    /// Walks a positive conjunction collecting `c = v` bindings. Returns
    /// `false` if the formula is not a positive conjunction or binds a
    /// column to two different values.
    fn collect_positive_bindings(
        &self,
        columns: &[usize],
        bindings: &mut [Option<Scalar>],
    ) -> bool {
        match self {
            Formula::True => true,
            Formula::Eq(c, v) => {
                if let Some(i) = columns.iter().position(|k| k == c) {
                    match &bindings[i] {
                        Some(prev) => prev == v,
                        None => {
                            bindings[i] = Some(v.clone());
                            true
                        }
                    }
                } else {
                    // An equality over a non-key column does not prevent the
                    // key columns from being pinned.
                    true
                }
            }
            Formula::And(f, g) => {
                f.collect_positive_bindings(columns, bindings)
                    && g.collect_positive_bindings(columns, bindings)
            }
            Formula::False | Formula::Not(_) | Formula::Or(_, _) => false,
        }
    }

    /// Structural size of the formula (number of AST nodes).
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Eq(_, _) => 1,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(f, g) | Formula::Or(f, g) => 1 + f.size() + g.size(),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Eq(c, v) => write!(f, "c{c}={v}"),
            Formula::Not(g) => write!(f, "¬({g})"),
            Formula::And(g, h) => write!(f, "({g} ∧ {h})"),
            Formula::Or(g, h) => write!(f, "({g} ∨ {h})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn atoms_evaluate_by_component() {
        let t = tuple![3, true];
        assert!(Formula::eq(0, 3i64).sat(&t));
        assert!(!Formula::eq(0, 4i64).sat(&t));
        assert!(Formula::eq(1, true).sat(&t));
        // Out-of-bounds column never matches.
        assert!(!Formula::eq(5, 3i64).sat(&t));
    }

    #[test]
    fn connectives() {
        let t = tuple![3, true];
        let f = Formula::eq(0, 3i64).and(Formula::eq(1, true));
        assert!(f.sat(&t));
        let g = Formula::eq(0, 4i64).or(Formula::eq(1, true));
        assert!(g.sat(&t));
        assert!(!g.clone().not().sat(&t));
        assert!(Formula::True.sat(&t));
        assert!(!Formula::False.sat(&t));
    }

    #[test]
    fn constant_folding() {
        assert_eq!(Formula::True.and(Formula::False), Formula::False);
        assert_eq!(Formula::False.or(Formula::True), Formula::True);
        assert_eq!(
            Formula::True.and(Formula::eq(0, 1i64)),
            Formula::eq(0, 1i64)
        );
        assert_eq!(Formula::True.not(), Formula::False);
        assert_eq!(Formula::eq(0, 1i64).not().not(), Formula::eq(0, 1i64));
    }

    #[test]
    fn tuple_eq_builds_conjunction() {
        let f = Formula::tuple_eq(&[0, 1], &[Scalar::Int(3), Scalar::Bool(true)]);
        assert!(f.sat(&tuple![3, true]));
        assert!(!f.sat(&tuple![3, false]));
    }

    #[test]
    fn pinned_valuation_positive_conjunction() {
        let f = Formula::eq(0, 3i64).and(Formula::eq(1, true));
        assert_eq!(f.pinned_valuation(&[0]), Some(vec![Scalar::Int(3)]));
        assert_eq!(
            f.pinned_valuation(&[0, 1]),
            Some(vec![Scalar::Int(3), Scalar::Bool(true)])
        );
        // Disjunction cannot pin.
        let g = Formula::eq(0, 3i64).or(Formula::eq(0, 4i64));
        assert_eq!(g.pinned_valuation(&[0]), None);
        // Unbound column cannot pin.
        assert_eq!(Formula::eq(1, true).pinned_valuation(&[0]), None);
        // Contradictory bindings fail.
        let h = Formula::eq(0, 3i64).and(Formula::eq(0, 4i64));
        assert_eq!(h.pinned_valuation(&[0]), None);
    }

    #[test]
    fn atoms_are_collected() {
        let f = Formula::eq(0, 3i64).and(Formula::eq(1, true).or(Formula::eq(0, 4i64)).not());
        let atoms = f.atoms();
        assert_eq!(atoms.len(), 3);
        assert!(atoms.contains(&(0, Scalar::Int(3))));
        assert!(atoms.contains(&(0, Scalar::Int(4))));
        assert!(atoms.contains(&(1, Scalar::Bool(true))));
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Formula::True.size(), 1);
        assert_eq!(Formula::eq(0, 1i64).and(Formula::eq(1, 2i64)).size(), 3);
    }
}
