//! Relational state model for JANUS (§6 of the paper).
//!
//! JANUS represents the semantic state of shared objects as *relations*:
//! sets of tuples over named columns, optionally constrained by a single
//! functional dependency whose domain and range partition the columns
//! (specializing the relation as a finite map from keys to values).
//! Operations over relations are expressed with three primitives —
//! [`RelOp::Insert`], [`RelOp::Remove`] and [`RelOp::Select`] (Table 2) —
//! whose read/write *footprints* (Table 3) drive dependence tracking, and
//! whose composite effect on a relation's content can be captured
//! symbolically as a propositional formula (Table 4) for equivalence
//! checking with a SAT solver.
//!
//! This crate is self-contained: it defines
//!
//! * [`Scalar`] and [`Value`] — the value universe (integers, booleans,
//!   strings, unit, and relations),
//! * [`Tuple`], [`Schema`], [`Fd`] and [`Relation`] — relational states,
//! * [`Formula`] — the selection/content formula language of Table 1,
//! * [`RelOp`] — the primitive operations of Table 2 with the matching
//!   (`~r`) semantics of §6.1,
//! * [`CellSet`] and [`Key`] — footprint regions at the granularity of
//!   FD-domain keys (Table 3),
//! * [`content`] — the symbolic content transformers of Table 4.
//!
//! # Example
//!
//! ```
//! use janus_relational::{Relation, Schema, Fd, Tuple, Scalar, RelOp, Formula};
//!
//! // A BitSet is a 2-ary relation mapping integral indices to booleans,
//! // with the functional dependency {index} -> {bit} (§3, stage 1).
//! let schema = Schema::with_fd(&["index", "bit"], Fd::new(&[0], &[1]));
//! let mut bits = Relation::empty(schema);
//!
//! // Setting bit 3 removes the unique tuple whose first component is 3
//! // and inserts (3, true).
//! let set3 = RelOp::insert(Tuple::new(vec![Scalar::Int(3), Scalar::Bool(true)]));
//! set3.apply(&mut bits);
//! assert_eq!(bits.len(), 1);
//!
//! // `get` is a select query.
//! let get3 = RelOp::select(Formula::eq(0, Scalar::Int(3)));
//! let result = get3.eval(&bits);
//! assert_eq!(result.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod content;
mod footprint;
mod formula;
mod ops;
mod relation;
mod scalar;
mod schema;
mod tuple;

pub use footprint::{CellSet, Footprint, Key};
pub use formula::Formula;
pub use ops::RelOp;
pub use relation::Relation;
pub use scalar::{Scalar, Value};
pub use schema::{Fd, Schema};
pub use tuple::Tuple;
