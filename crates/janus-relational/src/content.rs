//! Symbolic (logical) representation of relation contents (Table 4).
//!
//! The content of a relation is expressed as a propositional restriction
//! over the values contained in it: a tuple `t` belongs to the described
//! relation iff the content formula holds when its atoms are evaluated
//! against `t` and the distinguished [`Content::Base`] atom is read as
//! "`t` was in the initial relation `r0`".
//!
//! Update rules (Table 4):
//!
//! | transformation | content update |
//! |---|---|
//! | `r' = r \ w` | `f_{r'} = f_r ∧ ¬f_w` |
//! | `r' = r ∪ w` | `f_{r'} = f_r ∨ f_w` |
//! | `r' = r ∩ w` | `f_{r'} = f_r ∧ f_w` |
//! | `insert r t` | `f_{r'} = (f_r ∧ ¬⋀_{c∈C_dom} c=t_c) ∨ ⋀_{c∈C} c=t_c` |
//! | `remove r t` | `f_{r'} = f_r ∧ ¬⋀_{c∈C} c=t_c` |
//! | `w := select r φ` | `f_w = f_r ∧ φ` |
//!
//! Describing contents in propositional form lets equivalence tests be
//! implemented as calls to a SAT solver (`janus-sat`): `f ≡ g` iff
//! `¬(f ↔ g)` is unsatisfiable under the column-exclusivity axioms
//! returned by [`exclusivity_pairs`].

use std::collections::BTreeSet;
use std::fmt;

use crate::{Formula, RelOp, Scalar, Schema, Tuple};

/// A symbolic description of a relation's content.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Content {
    /// Membership in the (symbolic) initial relation `r0`.
    Base,
    /// Satisfied by every tuple.
    True,
    /// Satisfied by no tuple.
    False,
    /// The atom `c = v`.
    Atom(usize, Scalar),
    /// Negation.
    Not(Box<Content>),
    /// Conjunction.
    And(Box<Content>, Box<Content>),
    /// Disjunction.
    Or(Box<Content>, Box<Content>),
}

impl Content {
    /// Negation with constant folding.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        match self {
            Content::True => Content::False,
            Content::False => Content::True,
            Content::Not(c) => *c,
            c => Content::Not(Box::new(c)),
        }
    }

    /// Conjunction with constant folding.
    pub fn and(self, other: Content) -> Self {
        match (self, other) {
            (Content::False, _) | (_, Content::False) => Content::False,
            (Content::True, c) => c,
            (c, Content::True) => c,
            (a, b) => Content::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction with constant folding.
    pub fn or(self, other: Content) -> Self {
        match (self, other) {
            (Content::True, _) | (_, Content::True) => Content::True,
            (Content::False, c) => c,
            (c, Content::False) => c,
            (a, b) => Content::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Lifts a selection [`Formula`] into a content formula.
    pub fn from_formula(f: &Formula) -> Self {
        match f {
            Formula::True => Content::True,
            Formula::False => Content::False,
            Formula::Eq(c, v) => Content::Atom(*c, v.clone()),
            Formula::Not(g) => Content::from_formula(g).not(),
            Formula::And(g, h) => Content::from_formula(g).and(Content::from_formula(h)),
            Formula::Or(g, h) => Content::from_formula(g).or(Content::from_formula(h)),
        }
    }

    /// The conjunction `⋀ columns[i] = values[i]`.
    fn tuple_eq(columns: &[usize], t: &Tuple) -> Self {
        let mut f = Content::True;
        for &c in columns {
            f = f.and(Content::Atom(c, t.get(c).clone()));
        }
        f
    }

    /// Applies the Table 4 update rule for a mutation to this content
    /// formula; for a select, returns the content of the *result* `w`
    /// (the relation itself is unchanged, so callers keep `self` as the
    /// relation's content).
    pub fn apply(&self, op: &RelOp, schema: &Schema) -> Content {
        let all_cols: Vec<usize> = (0..schema.arity()).collect();
        match op {
            RelOp::Insert(t) => {
                let dom = schema.key_columns();
                self.clone()
                    .and(Content::tuple_eq(&dom, t).not())
                    .or(Content::tuple_eq(&all_cols, t))
            }
            RelOp::Remove(t) => self.clone().and(Content::tuple_eq(&all_cols, t).not()),
            RelOp::RemoveKey(k) => {
                let dom = schema.key_columns();
                let mut key_eq = Content::True;
                for (&c, v) in dom.iter().zip(k.components()) {
                    key_eq = key_eq.and(Content::Atom(c, v.clone()));
                }
                self.clone().and(key_eq.not())
            }
            RelOp::Select(f) => self.clone().and(Content::from_formula(f)),
            RelOp::Clear => Content::False,
        }
    }

    /// Applies a whole transformer (sequence of operations) to this
    /// content, per §6.1's "state transformers are expressed as sequences
    /// over the primitive relational operations". Selects do not change
    /// the relation's content and are skipped.
    pub fn apply_all<'a>(
        &self,
        ops: impl IntoIterator<Item = &'a RelOp>,
        schema: &Schema,
    ) -> Content {
        let mut c = self.clone();
        for op in ops {
            if op.is_mutation() {
                c = c.apply(op, schema);
            }
        }
        c
    }

    /// Evaluates the formula against a concrete tuple, reading
    /// [`Content::Base`] as `in_base`.
    pub fn eval(&self, t: &Tuple, in_base: bool) -> bool {
        match self {
            Content::Base => in_base,
            Content::True => true,
            Content::False => false,
            Content::Atom(c, v) => t.try_get(*c) == Some(v),
            Content::Not(f) => !f.eval(t, in_base),
            Content::And(f, g) => f.eval(t, in_base) && g.eval(t, in_base),
            Content::Or(f, g) => f.eval(t, in_base) || g.eval(t, in_base),
        }
    }

    /// All `(column, value)` atoms in the formula.
    pub fn atoms(&self) -> BTreeSet<(usize, Scalar)> {
        let mut out = BTreeSet::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut BTreeSet<(usize, Scalar)>) {
        match self {
            Content::Base | Content::True | Content::False => {}
            Content::Atom(c, v) => {
                out.insert((*c, v.clone()));
            }
            Content::Not(f) => f.collect_atoms(out),
            Content::And(f, g) | Content::Or(f, g) => {
                f.collect_atoms(out);
                g.collect_atoms(out);
            }
        }
    }

    /// Whether [`Content::Base`] occurs in the formula.
    pub fn mentions_base(&self) -> bool {
        match self {
            Content::Base => true,
            Content::True | Content::False | Content::Atom(_, _) => false,
            Content::Not(f) => f.mentions_base(),
            Content::And(f, g) | Content::Or(f, g) => f.mentions_base() || g.mentions_base(),
        }
    }
}

impl fmt::Display for Content {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Content::Base => write!(f, "r₀"),
            Content::True => write!(f, "true"),
            Content::False => write!(f, "false"),
            Content::Atom(c, v) => write!(f, "c{c}={v}"),
            Content::Not(g) => write!(f, "¬({g})"),
            Content::And(g, h) => write!(f, "({g} ∧ {h})"),
            Content::Or(g, h) => write!(f, "({g} ∨ {h})"),
        }
    }
}

/// The pairs of atoms that can never hold simultaneously of one tuple:
/// two equalities over the same column with different values. A SAT
/// encoding of content formulas must add `¬a ∨ ¬b` for each such pair to
/// be sound over the equality theory.
pub fn exclusivity_pairs(
    atoms: &BTreeSet<(usize, Scalar)>,
) -> Vec<((usize, Scalar), (usize, Scalar))> {
    let atoms: Vec<_> = atoms.iter().cloned().collect();
    let mut out = Vec::new();
    for i in 0..atoms.len() {
        for j in (i + 1)..atoms.len() {
            if atoms[i].0 == atoms[j].0 && atoms[i].1 != atoms[j].1 {
                out.push((atoms[i].clone(), atoms[j].clone()));
            }
        }
    }
    out
}

/// The pairs of boolean atoms `(c = true, c = false)` such that exactly
/// one must hold (the boolean domain is exhausted by the mentioned
/// values). A SAT encoding adds `a ∨ b` for each.
pub fn boolean_totality_pairs(
    atoms: &BTreeSet<(usize, Scalar)>,
) -> Vec<((usize, Scalar), (usize, Scalar))> {
    let mut out = Vec::new();
    for (c, v) in atoms {
        if *v == Scalar::Bool(true) {
            let neg = (*c, Scalar::Bool(false));
            if atoms.contains(&neg) {
                out.push(((*c, v.clone()), neg));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tuple, Fd, Relation};
    use std::sync::Arc;

    fn map_schema() -> Arc<Schema> {
        Schema::with_fd(&["k", "v"], Fd::new(&[0], &[1]))
    }

    /// Oracle: the content formula after applying `ops` to an initial
    /// relation must describe exactly the tuples of the concretely
    /// transformed relation.
    fn check_against_concrete(initial: &Relation, ops: &[RelOp], probes: &[Tuple]) {
        let schema = initial.schema().clone();
        let mut concrete = initial.clone();
        for op in ops {
            op.apply(&mut concrete);
        }
        let content = Content::Base.apply_all(ops.iter(), &schema);
        for t in probes {
            let in_base = initial.contains(t);
            assert_eq!(
                content.eval(t, in_base),
                concrete.contains(t),
                "content formula disagrees with concrete semantics on {t} after {ops:?}"
            );
        }
    }

    #[test]
    fn insert_rule_matches_concrete() {
        let initial = Relation::from_tuples(map_schema(), [tuple![1, 10], tuple![2, 20]]);
        let ops = vec![RelOp::insert(tuple![1, 99])];
        let probes = vec![tuple![1, 10], tuple![1, 99], tuple![2, 20], tuple![3, 30]];
        check_against_concrete(&initial, &ops, &probes);
    }

    #[test]
    fn remove_rule_matches_concrete() {
        let initial = Relation::from_tuples(map_schema(), [tuple![1, 10]]);
        let ops = vec![RelOp::remove(tuple![1, 10]), RelOp::remove(tuple![2, 20])];
        let probes = vec![tuple![1, 10], tuple![2, 20]];
        check_against_concrete(&initial, &ops, &probes);
    }

    #[test]
    fn insert_then_remove_is_absence() {
        let initial = Relation::empty(map_schema());
        let ops = vec![RelOp::insert(tuple![3, 30]), RelOp::remove(tuple![3, 30])];
        let probes = vec![tuple![3, 30], tuple![4, 40]];
        check_against_concrete(&initial, &ops, &probes);
    }

    #[test]
    fn clear_rule() {
        let initial = Relation::from_tuples(map_schema(), [tuple![1, 10]]);
        let ops = vec![RelOp::Clear, RelOp::insert(tuple![2, 20])];
        let probes = vec![tuple![1, 10], tuple![2, 20]];
        check_against_concrete(&initial, &ops, &probes);
    }

    #[test]
    fn remove_key_rule() {
        let initial = Relation::from_tuples(map_schema(), [tuple![1, 10], tuple![2, 20]]);
        let ops = vec![RelOp::RemoveKey(crate::Key::scalar(1i64))];
        let probes = vec![tuple![1, 10], tuple![2, 20]];
        check_against_concrete(&initial, &ops, &probes);
    }

    #[test]
    fn select_content_is_conjunction() {
        let content = Content::Base.apply(&RelOp::select(Formula::eq(0, 1i64)), &map_schema());
        // w = r ∧ (c0 = 1)
        assert!(content.eval(&tuple![1, 10], true));
        assert!(!content.eval(&tuple![1, 10], false));
        assert!(!content.eval(&tuple![2, 10], true));
    }

    #[test]
    fn exclusivity_pairs_same_column_different_values() {
        let mut atoms = BTreeSet::new();
        atoms.insert((0usize, Scalar::Int(1)));
        atoms.insert((0usize, Scalar::Int(2)));
        atoms.insert((1usize, Scalar::Int(1)));
        let pairs = exclusivity_pairs(&atoms);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0 .0, 0);
        assert_eq!(pairs[0].1 .0, 0);
    }

    #[test]
    fn boolean_totality_detected() {
        let mut atoms = BTreeSet::new();
        atoms.insert((1usize, Scalar::Bool(true)));
        atoms.insert((1usize, Scalar::Bool(false)));
        atoms.insert((0usize, Scalar::Int(1)));
        let pairs = boolean_totality_pairs(&atoms);
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn mentions_base_tracks_occurrence() {
        assert!(Content::Base.mentions_base());
        assert!(!Content::True.mentions_base());
        assert!(Content::Base
            .and(Content::Atom(0, Scalar::Int(1)))
            .mentions_base());
        // Clear erases the base.
        let c = Content::Base.apply(&RelOp::Clear, &map_schema());
        assert!(!c.mentions_base());
    }
}
