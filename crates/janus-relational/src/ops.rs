//! Primitive relational operations and their footprints (Tables 2 & 3).

use std::fmt;

use crate::{CellSet, Footprint, Formula, Key, Relation, Tuple};

/// A primitive relational operation (Table 2).
///
/// State transformers — both concrete and abstract — are expressed as
/// sequences over these primitives (§6.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelOp {
    /// `insert r t`: `r' = (r \ {t' : t ~r t'}) ∪ {t}`.
    Insert(Tuple),
    /// `remove r t`: `r' = r \ {t}`.
    Remove(Tuple),
    /// Removes every tuple whose key equals the given key (the keyed form
    /// of `remove` used by ADT models such as `Map::remove(k)`).
    RemoveKey(Key),
    /// `w := select r f`: `r' = r`, `w = {t ∈ r : t |= f}`.
    Select(Formula),
    /// Replaces the whole relation with the empty relation (`clear()`);
    /// a blind whole-object write.
    Clear,
}

impl RelOp {
    /// Convenience constructor for [`RelOp::Insert`].
    pub fn insert(t: Tuple) -> Self {
        RelOp::Insert(t)
    }

    /// Convenience constructor for [`RelOp::Remove`].
    pub fn remove(t: Tuple) -> Self {
        RelOp::Remove(t)
    }

    /// Convenience constructor for [`RelOp::Select`].
    pub fn select(f: Formula) -> Self {
        RelOp::Select(f)
    }

    /// Whether the operation can modify the relation.
    pub fn is_mutation(&self) -> bool {
        !matches!(self, RelOp::Select(_))
    }

    /// Applies this operation to `r` in place, returning the tuples it
    /// removed (for mutations) — useful to callers that need the
    /// displacement information.
    pub fn apply(&self, r: &mut Relation) -> Vec<Tuple> {
        match self {
            RelOp::Insert(t) => r.insert(t.clone()),
            RelOp::Remove(t) => {
                if r.remove(t) {
                    vec![t.clone()]
                } else {
                    Vec::new()
                }
            }
            RelOp::RemoveKey(k) => r.remove_key(k),
            RelOp::Select(_) => Vec::new(),
            RelOp::Clear => {
                let all: Vec<Tuple> = r.iter().cloned().collect();
                r.clear();
                all
            }
        }
    }

    /// Evaluates the operation's *result* against `r` without modifying it:
    /// the selected tuples for a select, the empty list otherwise.
    pub fn eval(&self, r: &Relation) -> Vec<Tuple> {
        match self {
            RelOp::Select(f) => r.select(f),
            _ => Vec::new(),
        }
    }

    /// The footprint of this operation when applied to relation `r`
    /// (Table 3), at key granularity.
    ///
    /// Following §6.2, for sound dependence tracking `remove r t` *reads*
    /// `t`'s cell when `r` does not contain `t` (the removal's observable
    /// no-op depends on the absence). Selects read the cells their formula
    /// pins; a select whose formula does not pin the key columns reads the
    /// whole object (it can observe the presence or absence of any tuple —
    /// this covers phantoms).
    pub fn footprint(&self, r: &Relation) -> Footprint {
        let key_cols = r.schema().key_columns();
        match self {
            RelOp::Insert(t) => Footprint::write_only(CellSet::key(Key::new(t.project(&key_cols)))),
            RelOp::Remove(t) => {
                let cell = CellSet::key(Key::new(t.project(&key_cols)));
                if r.contains(t) {
                    Footprint::write_only(cell)
                } else {
                    // Sound tracking of a no-op removal: it reads the
                    // (absent) tuple's cell.
                    Footprint::read_only(cell)
                }
            }
            RelOp::RemoveKey(k) => {
                let cell = CellSet::key(k.clone());
                if r.lookup(k).is_some() {
                    Footprint::write_only(cell)
                } else {
                    Footprint::read_only(cell)
                }
            }
            RelOp::Select(f) => match f.pinned_valuation(&key_cols) {
                Some(vals) => Footprint::read_only(CellSet::key(Key::new(vals))),
                None => Footprint::read_only(CellSet::All),
            },
            RelOp::Clear => Footprint::write_only(CellSet::All),
        }
    }
}

impl fmt::Display for RelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelOp::Insert(t) => write!(f, "insert {t}"),
            RelOp::Remove(t) => write!(f, "remove {t}"),
            RelOp::RemoveKey(k) => write!(f, "remove-key {k}"),
            RelOp::Select(fm) => write!(f, "select {fm}"),
            RelOp::Clear => write!(f, "clear"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tuple, Fd, Scalar, Schema};
    use std::sync::Arc;

    fn map_schema() -> Arc<Schema> {
        Schema::with_fd(&["k", "v"], Fd::new(&[0], &[1]))
    }

    #[test]
    fn insert_footprint_is_key_write() {
        let r = Relation::empty(map_schema());
        let fp = RelOp::insert(tuple![1, 10]).footprint(&r);
        assert!(fp.write.covers(&Key::scalar(1i64)));
        assert!(fp.read.is_empty());
    }

    #[test]
    fn remove_of_absent_tuple_reads() {
        let mut r = Relation::empty(map_schema());
        let op = RelOp::remove(tuple![1, 10]);
        // Absent: reads the cell.
        let fp = op.footprint(&r);
        assert!(!fp.is_write());
        assert!(fp.read.covers(&Key::scalar(1i64)));
        // Present: writes the cell.
        r.insert(tuple![1, 10]);
        let fp = op.footprint(&r);
        assert!(fp.is_write());
    }

    #[test]
    fn remove_key_footprint_mirrors_remove() {
        let mut r = Relation::empty(map_schema());
        let op = RelOp::RemoveKey(Key::scalar(5i64));
        assert!(!op.footprint(&r).is_write());
        r.insert(tuple![5, 50]);
        assert!(op.footprint(&r).is_write());
        let mut r2 = r.clone();
        assert_eq!(op.apply(&mut r2), vec![tuple![5, 50]]);
        assert!(r2.is_empty());
    }

    #[test]
    fn pinned_select_reads_one_cell() {
        let r = Relation::empty(map_schema());
        let fp = RelOp::select(Formula::eq(0, 3i64)).footprint(&r);
        assert_eq!(fp.read, CellSet::key(Key::scalar(3i64)));
    }

    #[test]
    fn unpinned_select_reads_all() {
        let r = Relation::empty(map_schema());
        // Constrains the range column only: cannot pin the key.
        let fp = RelOp::select(Formula::eq(1, 3i64)).footprint(&r);
        assert_eq!(fp.read, CellSet::All);
    }

    #[test]
    fn clear_writes_all() {
        let mut r = Relation::empty(map_schema());
        r.insert(tuple![1, 1]);
        r.insert(tuple![2, 2]);
        let op = RelOp::Clear;
        assert_eq!(op.footprint(&r).write, CellSet::All);
        let removed = op.apply(&mut r);
        assert_eq!(removed.len(), 2);
        assert!(r.is_empty());
    }

    #[test]
    fn select_eval_does_not_mutate() {
        let mut r = Relation::empty(map_schema());
        r.insert(tuple![1, 10]);
        let op = RelOp::select(Formula::eq(0, 1i64));
        let before = r.clone();
        let result = op.eval(&r);
        assert_eq!(result, vec![tuple![1, 10]]);
        assert_eq!(r, before);
    }

    #[test]
    fn apply_reports_displacement() {
        let mut r = Relation::empty(map_schema());
        RelOp::insert(tuple![1, 10]).apply(&mut r);
        let displaced = RelOp::insert(tuple![1, 20]).apply(&mut r);
        assert_eq!(displaced, vec![tuple![1, 10]]);
        assert_eq!(r.lookup(&Key::scalar(1i64)), Some(tuple![1, 20]));
    }

    #[test]
    fn mutation_classification() {
        assert!(RelOp::insert(tuple![1, 1]).is_mutation());
        assert!(RelOp::Clear.is_mutation());
        assert!(!RelOp::select(Formula::True).is_mutation());
    }

    #[test]
    fn no_fd_select_key_is_whole_tuple() {
        let schema = Schema::new(&["a", "b"]);
        let r = Relation::from_tuples(Arc::clone(&schema), [tuple![1, 2], tuple![1, 3]]);
        // Pinning both columns yields a one-cell read.
        let f = Formula::tuple_eq(&[0, 1], &[Scalar::Int(1), Scalar::Int(2)]);
        let fp = RelOp::select(f).footprint(&r);
        assert_eq!(
            fp.read,
            CellSet::key(Key::new(vec![Scalar::Int(1), Scalar::Int(2)]))
        );
        // Pinning only one column of a two-column key reads all.
        let fp = RelOp::select(Formula::eq(0, 1i64)).footprint(&r);
        assert_eq!(fp.read, CellSet::All);
    }
}
