//! Property tests: the symbolic content formulas of Table 4 agree with
//! concrete relation semantics, and footprints are sound.

use std::sync::Arc;

use janus_relational::content::Content;
use janus_relational::{Fd, Formula, Key, RelOp, Relation, Scalar, Schema, Tuple};
use proptest::prelude::*;

fn map_schema() -> Arc<Schema> {
    Schema::with_fd(&["k", "v"], Fd::new(&[0], &[1]))
}

const KEYS: std::ops::Range<i64> = 0..4;
const VALS: std::ops::Range<i64> = 0..3;

fn tuple_strategy() -> impl Strategy<Value = Tuple> {
    (KEYS, VALS).prop_map(|(k, v)| Tuple::new(vec![Scalar::Int(k), Scalar::Int(v)]))
}

fn op_strategy() -> impl Strategy<Value = RelOp> {
    prop_oneof![
        tuple_strategy().prop_map(RelOp::insert),
        tuple_strategy().prop_map(RelOp::remove),
        KEYS.prop_map(|k| RelOp::RemoveKey(Key::scalar(k))),
        KEYS.prop_map(|k| RelOp::select(Formula::eq(0, k))),
        Just(RelOp::Clear),
    ]
}

fn initial_strategy() -> impl Strategy<Value = Relation> {
    proptest::collection::vec(tuple_strategy(), 0..5)
        .prop_map(|ts| Relation::from_tuples(map_schema(), ts))
}

/// Every probe tuple in the small universe.
fn probes() -> Vec<Tuple> {
    let mut out = Vec::new();
    for k in KEYS {
        for v in VALS {
            out.push(Tuple::new(vec![Scalar::Int(k), Scalar::Int(v)]));
        }
    }
    out
}

proptest! {
    /// Table 4 soundness: the content formula computed symbolically from
    /// `Base` describes exactly the concretely transformed relation.
    #[test]
    fn content_formula_matches_concrete_semantics(
        initial in initial_strategy(),
        ops in proptest::collection::vec(op_strategy(), 0..8),
    ) {
        let schema = map_schema();
        let mut concrete = initial.clone();
        for op in &ops {
            op.apply(&mut concrete);
        }
        let content = Content::Base.apply_all(ops.iter(), &schema);
        for t in probes() {
            prop_assert_eq!(
                content.eval(&t, initial.contains(&t)),
                concrete.contains(&t),
                "disagreement on {} after {:?}", t, ops
            );
        }
    }

    /// Footprint soundness: if an operation's result or effect differs
    /// between two relations, the relations must differ inside the
    /// operation's footprint (reads ∪ writes).
    #[test]
    fn footprints_cover_observable_differences(
        r1 in initial_strategy(),
        r2 in initial_strategy(),
        op in op_strategy(),
    ) {
        let fp1 = op.footprint(&r1);
        let fp2 = op.footprint(&r2);
        // Apply to both.
        let (mut a, mut b) = (r1.clone(), r2.clone());
        let res_a = op.eval(&a);
        let res_b = op.eval(&b);
        op.apply(&mut a);
        op.apply(&mut b);

        // If the relations agree on every cell either footprint touches,
        // results must agree and the per-cell effects must agree.
        let accessed = fp1.accessed().union(&fp2.accessed());
        let agree_on_accessed = probes().iter().all(|t| {
            let key = r1.key_of(t);
            !accessed.covers(&key) || (r1.lookup(&key) == r2.lookup(&key))
        });
        if agree_on_accessed {
            prop_assert_eq!(res_a, res_b, "select result leaked outside footprint");
        }
    }

    /// FD maintenance: after any op sequence, no two tuples share a key.
    #[test]
    fn functional_dependency_is_maintained(
        initial in initial_strategy(),
        ops in proptest::collection::vec(op_strategy(), 0..10),
    ) {
        let mut r = initial;
        for op in &ops {
            op.apply(&mut r);
        }
        let mut seen = std::collections::BTreeSet::new();
        for t in r.iter() {
            prop_assert!(
                seen.insert(t.get(0).clone()),
                "duplicate key {} after {:?}", t.get(0), ops
            );
        }
    }

    /// Lattice laws on relations.
    #[test]
    fn lattice_laws(a in initial_strategy(), b in initial_strategy()) {
        prop_assert_eq!(a.union(&b).len(), b.union(&a).len());
        prop_assert_eq!(a.intersection(&b).len(), b.intersection(&a).len());
        prop_assert_eq!(
            a.subtract(&b).len() + a.intersection(&b).len(),
            a.len()
        );
        // Absorption: a ∪ (a ∩ b) = a.
        prop_assert_eq!(a.union(&a.intersection(&b)), a.clone());
    }
}
