//! Property tests for the Table 1 formula language.

use janus_relational::{Formula, Scalar, Tuple};
use proptest::prelude::*;

fn scalar_strategy() -> impl Strategy<Value = Scalar> {
    prop_oneof![
        (0i64..4).prop_map(Scalar::Int),
        any::<bool>().prop_map(Scalar::Bool),
    ]
}

fn formula_strategy() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        (0usize..3, scalar_strategy()).prop_map(|(c, v)| Formula::Eq(c, v)),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| Formula::Not(Box::new(f))),
            (inner.clone(), inner.clone())
                .prop_map(|(f, g)| Formula::And(Box::new(f), Box::new(g))),
            (inner.clone(), inner).prop_map(|(f, g)| Formula::Or(Box::new(f), Box::new(g))),
        ]
    })
}

fn tuple_strategy() -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(scalar_strategy(), 3).prop_map(Tuple::new)
}

proptest! {
    /// The folding constructors (`not`/`and`/`or`) preserve semantics
    /// relative to the raw AST constructors.
    #[test]
    fn folding_constructors_preserve_semantics(
        f in formula_strategy(),
        g in formula_strategy(),
        t in tuple_strategy(),
    ) {
        prop_assert_eq!(f.clone().not().sat(&t), !f.sat(&t));
        prop_assert_eq!(f.clone().and(g.clone()).sat(&t), f.sat(&t) && g.sat(&t));
        prop_assert_eq!(f.clone().or(g.clone()).sat(&t), f.sat(&t) || g.sat(&t));
    }

    /// De Morgan duality holds pointwise.
    #[test]
    fn de_morgan(f in formula_strategy(), g in formula_strategy(), t in tuple_strategy()) {
        let lhs = f.clone().and(g.clone()).not();
        let rhs = f.not().or(g.not());
        prop_assert_eq!(lhs.sat(&t), rhs.sat(&t));
    }

    /// A pinned valuation, when reported, really is the only key the
    /// formula can match: any satisfying tuple projects onto it.
    #[test]
    fn pinned_valuation_is_sound(
        f in formula_strategy(),
        t in tuple_strategy(),
    ) {
        let columns = [0usize, 1, 2];
        if let Some(vals) = f.pinned_valuation(&columns) {
            if f.sat(&t) {
                prop_assert_eq!(t.project(&columns), vals);
            }
        }
    }

    /// Atom collection covers exactly the atoms evaluation can consult:
    /// two tuples agreeing on every collected atom's column get the same
    /// verdict.
    #[test]
    fn atoms_determine_evaluation(
        f in formula_strategy(),
        t1 in tuple_strategy(),
        t2 in tuple_strategy(),
    ) {
        let atoms = f.atoms();
        let agree = atoms.iter().all(|(c, v)| {
            (t1.try_get(*c) == Some(v)) == (t2.try_get(*c) == Some(v))
        });
        if agree {
            prop_assert_eq!(f.sat(&t1), f.sat(&t2));
        }
    }

    /// Size is positive and monotone under composition.
    #[test]
    fn size_is_structural(f in formula_strategy(), g in formula_strategy()) {
        prop_assert!(f.size() >= 1);
        let both = Formula::And(Box::new(f.clone()), Box::new(g.clone()));
        prop_assert_eq!(both.size(), 1 + f.size() + g.size());
    }
}
